"""Tests for the telemetry subsystem (repro.telemetry).

Covers the acceptance bars of docs/OBSERVABILITY.md:

* disabled defaults: every component hook is None, the null tracer is
  inert, and an inactive session reports None;
* Chrome trace export: schema-valid, metadata-first, deterministic
  (byte-identical across reruns, --shard slices and --domains counts);
* record bit-identity: a traced sweep produces the very records an
  untraced sweep does, with telemetry/diagnostics only as siblings;
* the metrics ring buffer, the Prometheus exposition, the
  self-profiler, and the env-var session channel.
"""

import json
import os

import pytest

from repro import SystemConfig
from repro.core.runner import run_gemm, system_for
from repro.sim.eventq import ParallelSimulator, Simulator
from repro.sim.statistics import StatGroup
from repro.sweep import SweepSpec, gemm_points, run_sweep
from repro.telemetry import (
    TELEMETRY_ENV,
    TRACER,
    MetricsSampler,
    NullTracer,
    SelfProfiler,
    SpanTracer,
    TelemetrySettings,
    activate,
    active,
    deactivate,
    validate_chrome_trace,
)
from repro.telemetry.tracer import QuantumTrace

SIZE = 32


@pytest.fixture(autouse=True)
def clean_session():
    """Every test starts and ends with no telemetry session."""
    deactivate()
    yield
    deactivate()


def small_spec(name="telemetry-sweep", packets=(64, 256), domains=None):
    base = SystemConfig.table2_baseline()
    if domains is not None:
        base = base.with_domains(domains)
    configs = {packet: base.with_packet_size(packet) for packet in packets}
    return SweepSpec(name=name, points=gemm_points(configs, SIZE))


def run_traced(tmp_path, subdir, **settings_kw):
    settings = TelemetrySettings(
        trace=True, trace_dir=str(tmp_path / subdir), **settings_kw
    )
    activate(settings)
    try:
        return run_sweep(small_spec(), workers=1, cache=False)
    finally:
        deactivate()


# ----------------------------------------------------------------------
# Disabled defaults
# ----------------------------------------------------------------------
class TestDisabledDefaults:
    def test_null_tracer_is_inert(self):
        assert isinstance(TRACER, NullTracer)
        assert TRACER.enabled is False
        TRACER.complete(0, "x", "span", "cat", 0, 10)
        TRACER.instant(0, "x", "mark", "cat", 5)
        TRACER.clear()  # all no-ops, nothing to assert beyond not raising

    def test_component_hooks_default_none(self):
        system = system_for(SystemConfig.table2_baseline())
        assert system.wrapper.dma.trace is None
        assert system.sim._profiler is None
        assert system.fabric.up.trace is None
        assert system.fabric.down.trace is None

    def test_inactive_session(self):
        assert active() is None
        from repro.telemetry import current_runtime, drain_point

        assert current_runtime() is None
        assert drain_point() is None

    def test_settings_disabled_by_default(self):
        settings = TelemetrySettings()
        assert not settings.enabled
        assert TelemetrySettings(trace=True).enabled
        assert TelemetrySettings(metrics_every=100).enabled
        assert TelemetrySettings(diagnostics=True).enabled


# ----------------------------------------------------------------------
# The span tracer and Chrome export
# ----------------------------------------------------------------------
class TestSpanTracer:
    def fill(self, tracer):
        tracer.complete(0, "link.up", "tlp-train", "pcie", 100, 50,
                        args={"tlps": 3})
        tracer.complete(1, "dma0", "dma-segment:A", "dma", 200, 75)
        tracer.instant(1, "dma0", "dma-submit:A", "dma", 150)

    def test_records_and_tids(self):
        tracer = SpanTracer()
        self.fill(tracer)
        assert len(tracer) == 3
        events = tracer.chrome_events()
        # Metadata first: 2 process names + 2 thread names, then spans.
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 4
        assert events[: len(meta)] == meta
        spans = [e for e in events if e["ph"] != "M"]
        assert [e["ph"] for e in spans] == ["X", "X", "i"]
        # Ticks are ps; Chrome ts is microseconds.
        assert spans[0]["ts"] == 100 / 10**6
        assert spans[0]["dur"] == 50 / 10**6

    def test_schema_valid_and_deterministic(self):
        one, two = SpanTracer(), SpanTracer()
        self.fill(one)
        self.fill(two)
        assert one.to_chrome_json() == two.to_chrome_json()
        document = json.loads(one.to_chrome_json())
        assert validate_chrome_trace(document) == []

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        bad = {"traceEvents": [
            {"ph": "Z", "pid": 0, "tid": 0, "name": "x"},
            {"ph": "X", "pid": "no", "tid": 0, "name": "x", "ts": -1},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("unknown phase" in p for p in problems)
        assert any("pid" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)

    def test_clear(self):
        tracer = SpanTracer()
        self.fill(tracer)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.chrome_events() == []


# ----------------------------------------------------------------------
# Session settings and the env channel
# ----------------------------------------------------------------------
class TestSessionChannel:
    def test_json_round_trip(self):
        settings = TelemetrySettings(
            trace=True, trace_dir="/tmp/t", metrics_every=1000,
            profile="sampling", diagnostics=True,
        )
        assert TelemetrySettings.from_json(settings.to_json()) == settings

    def test_activate_exports_env(self):
        settings = TelemetrySettings(trace=True, trace_dir="/tmp/t")
        activate(settings)
        assert active() == settings
        raw = os.environ[TELEMETRY_ENV]
        assert TelemetrySettings.from_json(json.loads(raw)) == settings
        deactivate()
        assert TELEMETRY_ENV not in os.environ
        assert active() is None

    def test_env_channel_alone_activates(self):
        # What a pool worker sees: no in-process activate() call, only
        # the inherited environment variable.
        settings = TelemetrySettings(diagnostics=True)
        os.environ[TELEMETRY_ENV] = json.dumps(settings.to_json())
        try:
            assert active() == settings
        finally:
            del os.environ[TELEMETRY_ENV]

    def test_malformed_env_is_ignored(self):
        os.environ[TELEMETRY_ENV] = "{not json"
        try:
            assert active() is None
        finally:
            del os.environ[TELEMETRY_ENV]


# ----------------------------------------------------------------------
# Traced sweeps: bit-identity and deterministic artifacts
# ----------------------------------------------------------------------
class TestTracedSweep:
    def test_records_bit_identical_and_siblings(self, tmp_path):
        untraced = run_sweep(small_spec(), workers=1, cache=False)
        traced = run_traced(tmp_path, "t", diagnostics=True)
        plain = {o.key: o.record for o in untraced.outcomes}
        with_telemetry = {o.key: o.record for o in traced.outcomes}
        assert plain == with_telemetry
        for outcome in traced.outcomes:
            record = outcome.to_record()
            assert "telemetry" in record and "diagnostics" in record
            assert "telemetry" not in record["record"]
            assert "diagnostics" not in record["record"]
            assert record["diagnostics"]["events_executed"] > 0
        for outcome in untraced.outcomes:
            record = outcome.to_record()
            assert "telemetry" not in record
            assert "diagnostics" not in record

    def test_trace_files_validate_and_rerun_byte_identical(self, tmp_path):
        first = run_traced(tmp_path, "one")
        second = run_traced(tmp_path, "two")
        one_dir, two_dir = tmp_path / "one", tmp_path / "two"
        names = sorted(p.name for p in one_dir.glob("*.trace.json"))
        assert names == sorted(p.name for p in two_dir.glob("*.trace.json"))
        assert len(names) == len(first.outcomes) == len(second.outcomes)
        for name in names:
            blob = (one_dir / name).read_bytes()
            assert blob == (two_dir / name).read_bytes()
            problems = validate_chrome_trace(json.loads(blob))
            assert problems == [], (name, problems)

    def test_trace_has_expected_span_families(self, tmp_path):
        run_traced(tmp_path, "fam")
        names = set()
        for path in (tmp_path / "fam").glob("*.trace.json"):
            for event in json.loads(path.read_text())["traceEvents"]:
                if event["ph"] in ("X", "i"):
                    names.add(event["name"].split(":")[0])
        assert "tlp-train" in names
        assert "dma-submit" in names
        assert "dma-segment" in names
        assert "dma-descriptor" in names

    def test_metrics_and_profile_artifacts(self, tmp_path):
        settings = TelemetrySettings(
            trace_dir=str(tmp_path / "m"), metrics_every=1_000_000,
            profile="exact",
        )
        activate(settings)
        try:
            report = run_sweep(small_spec(), workers=1, cache=False)
        finally:
            deactivate()
        for outcome in report.outcomes:
            summary = outcome.telemetry
            assert summary["metrics"]["summary"]["samples"] > 0
            metrics_doc = json.loads(
                open(summary["metrics"]["path"]).read()
            )
            assert metrics_doc["timeline"]
            prom = open(summary["metrics"]["prometheus_path"]).read()
            assert "repro_stat{" in prom
            assert "repro_samples_total" in prom
            profile_doc = json.loads(open(summary["profile"]["path"]).read())
            assert profile_doc["mode"] == "exact"
            assert profile_doc["buckets"]
            # Host wall-clock stays out of the cross-process summary.
            assert "buckets" not in summary["profile"]
            assert "total_seconds" not in summary["profile"]

    def test_diagnostics_only_session(self, tmp_path):
        settings = TelemetrySettings(diagnostics=True)
        activate(settings)
        try:
            report = run_sweep(small_spec(), workers=1, cache=False)
        finally:
            deactivate()
        for outcome in report.outcomes:
            record = outcome.to_record()
            assert "diagnostics" in record
            assert "telemetry" not in record  # nothing else captured

    def test_cached_points_capture_nothing(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, workers=1, cache_dir=tmp_path / "cache")
        settings = TelemetrySettings(
            trace=True, trace_dir=str(tmp_path / "cached-t")
        )
        activate(settings)
        try:
            replay = run_sweep(spec, workers=1, cache_dir=tmp_path / "cache")
        finally:
            deactivate()
        assert replay.fully_cached
        assert all(o.telemetry is None for o in replay.outcomes)
        assert not (tmp_path / "cached-t").exists()


class TestPdesQuantumSpans:
    def test_quantum_rounds_traced(self, tmp_path):
        # A single-endpoint system stays on the classic Simulator even
        # under --domains; quantum rounds need a partitionable fabric.
        from repro.core.runner import run_multi_gemm
        from repro.telemetry import drain_point

        config = SystemConfig.pcie_2gb(num_accelerators=2).with_domains(2)
        settings = TelemetrySettings(
            trace=True, trace_dir=str(tmp_path / "pdes")
        )
        activate(settings)
        try:
            run_multi_gemm(config, SIZE, SIZE, SIZE)
            trace = drain_point()["trace"]
        finally:
            deactivate()
        document = json.loads(trace["chrome_json"])
        rounds = [e for e in document["traceEvents"]
                  if e.get("name") == "quantum-round"]
        assert rounds
        assert validate_chrome_trace(document) == []

    def test_quantum_trace_hook_direct(self):
        sim = ParallelSimulator(2, quantum=100)
        tracer = SpanTracer()
        sim._quantum_trace = QuantumTrace(tracer)
        for dom in range(2):
            sim.schedule_in(dom, 50 + dom, lambda: None)
        sim.run()
        spans = [e for e in tracer.chrome_events()
                 if e.get("name") == "quantum-round"]
        assert spans
        assert sim.diagnostics()["sync_rounds"] >= len(spans)


# ----------------------------------------------------------------------
# Metrics sampler
# ----------------------------------------------------------------------
class _FakeObj:
    def __init__(self, name):
        self.stats = StatGroup(name)


class _FakeSystem:
    def __init__(self, objs):
        import types

        self.sim = types.SimpleNamespace(objects=objs)


class TestMetricsSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsSampler(every=0)
        with pytest.raises(ValueError):
            MetricsSampler(every=10, capacity=0)

    def test_deltas_and_clean_skip(self):
        hot, cold = _FakeObj("hot"), _FakeObj("cold")
        counter = hot.stats.scalar("count")
        cold.stats.scalar("idle")
        sampler = MetricsSampler(every=10)
        sampler.begin_run(_FakeSystem([hot, cold]))
        # Prime both groups' caches so the clean skip is observable.
        hot.stats.flatten()
        cold.stats.flatten()
        sampler.sample_now(0)

        counter.inc(5)
        deltas = sampler.sample_now(10)
        assert deltas == {"hot.count": 5}
        counter.inc(2)
        assert sampler.sample_now(20) == {"hot.count": 2}
        # A sample with nothing moved records an empty delta set.
        assert sampler.sample_now(30) == {}
        assert sampler.timeline("hot.count") == [(10, 5), (20, 2)]
        assert "hot.count" in sampler.series_names()

    def test_ring_buffer_bounds(self):
        obj = _FakeObj("dev")
        counter = obj.stats.scalar("n")
        sampler = MetricsSampler(every=1, capacity=4)
        sampler.begin_run(_FakeSystem([obj]))
        for tick in range(10):
            counter.inc()
            sampler.sample_now(tick)
        assert len(sampler.samples) == 4
        assert sampler.dropped == 6
        assert sampler.total_samples == 10
        assert sampler.summary()["retained"] == 4

    def test_arm_self_reschedules_and_stands_down(self):
        sim = Simulator()
        obj = _FakeObj("dev")
        counter = obj.stats.scalar("n")
        sampler = MetricsSampler(every=100)
        sampler.begin_run(_FakeSystem([obj]))
        state = {"left": 5}

        def tick():
            counter.inc()
            state["left"] -= 1
            if state["left"]:
                sim.schedule(150, tick)

        sim.schedule(1, tick)
        sampler.arm(sim)
        sim.run()  # must terminate: the sampler stands down when alone
        assert sampler.total_samples >= 5
        assert sum(d.get("dev.n", 0)
                   for _t, d in sampler.samples) == 5

    def test_prometheus_text(self):
        obj = _FakeObj("dev")
        obj.stats.scalar("n").inc(3)
        sampler = MetricsSampler(every=1)
        sampler.begin_run(_FakeSystem([obj]))
        sampler.sample_now(0)
        text = sampler.prometheus_text()
        assert 'repro_stat{series="dev.n"} 3' in text
        assert "repro_samples_total 1" in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# Self-profiler
# ----------------------------------------------------------------------
class TestSelfProfiler:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelfProfiler(mode="turbo")
        with pytest.raises(ValueError):
            SelfProfiler(mode="sampling", sample_every=0)
        assert SelfProfiler(mode="exact").sample_every == 1

    def test_bucket_accounting(self):
        profiler = SelfProfiler(mode="sampling", sample_every=10)
        profiler.record("dma", 0.001)
        profiler.record("dma", 0.002)
        profiler.record("link", 0.004)
        table = profiler.table()
        assert table[0]["bucket"] == "link"  # heaviest (stride-scaled)
        assert table[0]["seconds"] == pytest.approx(0.04)
        assert profiler.total_seconds == pytest.approx(0.07)
        record = profiler.to_record()
        assert record["mode"] == "sampling"
        assert len(record["buckets"]) == 2

    def test_profiled_run_same_results(self):
        def drive(profiler):
            sim = Simulator()
            if profiler is not None:
                sim._profiler = profiler
            state = {"fired": 0}

            def fire():
                state["fired"] += 1
                if state["fired"] < 50:
                    sim.schedule(7, fire, name="train")

            sim.schedule(1, fire, name="train")
            sim.run()
            return sim.now, sim.events_executed, state["fired"]

        plain = drive(None)
        profiler = SelfProfiler(mode="exact")
        profiled = drive(profiler)
        assert plain == profiled  # simulated results identical
        assert profiler.events_seen == plain[1]
        assert "train" in profiler.buckets

    def test_profiled_run_until_idle(self):
        sim = Simulator()
        profiler = SelfProfiler(mode="exact")
        sim._profiler = profiler
        state = {"left": 20}

        def fire():
            state["left"] -= 1
            if state["left"]:
                sim.schedule(3, fire, name="idle-train")

        sim.schedule(1, fire, name="idle-train")
        sim.run_until_idle(lambda: state["left"] <= 0)
        assert state["left"] == 0
        assert profiler.events_seen > 0


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_simulator_diagnostics(self):
        sim = Simulator()
        handle = sim.schedule(5, lambda: None)
        handle.cancel()
        sim.schedule(10, lambda: None)
        sim.run()
        diag = sim.diagnostics()
        assert diag["events_executed"] == 1
        assert diag["events_skipped"] == 1
        assert diag["freelist_high_water"] >= 0

    def test_parallel_diagnostics(self):
        sim = ParallelSimulator(2, quantum=10)
        sim.schedule_in(0, 5, lambda: None)
        sim.schedule_in(1, 7, lambda: None)
        sim.run()
        diag = sim.diagnostics()
        assert diag["events_executed"] == 2
        assert "sync_rounds" in diag and "cross_posts" in diag

    def test_gemm_results_unchanged_by_telemetry(self, tmp_path):
        config = SystemConfig.table2_baseline()
        plain = run_gemm(config, SIZE, SIZE, SIZE)
        settings = TelemetrySettings(
            trace=True, trace_dir=str(tmp_path / "g"),
            metrics_every=1_000_000, profile="exact", diagnostics=True,
        )
        activate(settings)
        try:
            traced = run_gemm(config, SIZE, SIZE, SIZE)
        finally:
            deactivate()
        assert plain == traced
