"""Unit tests for the event queue and simulator driver."""

import pytest

from repro.sim.eventq import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    EventQueue,
    Simulator,
)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(30, lambda: order.append(30))
        q.push(10, lambda: order.append(10))
        q.push(20, lambda: order.append(20))
        while (event := q.pop()) is not None:
            event.callback()
        assert order == [10, 20, 30]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        order = []
        for label in "abc":
            q.push(5, lambda l=label: order.append(l))
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_priority_beats_insertion_order(self):
        q = EventQueue()
        order = []
        q.push(5, lambda: order.append("late"), priority=PRIORITY_LATE)
        q.push(5, lambda: order.append("early"), priority=PRIORITY_EARLY)
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["early", "late"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        handle = q.push(1, lambda: fired.append("cancelled"))
        q.push(2, lambda: fired.append("kept"))
        handle.cancel()
        while (event := q.pop()) is not None:
            event.callback()
        assert fired == ["kept"]

    def test_peek_tick_skips_cancelled(self):
        q = EventQueue()
        handle = q.push(1, lambda: None)
        q.push(7, lambda: None)
        handle.cancel()
        assert q.peek_tick() == 7

    def test_peek_empty(self):
        assert EventQueue().peek_tick() is None

    def test_len(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2


class TestSimulator:
    def test_time_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.schedule(50, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [50, 100]
        assert sim.now == 100

    def test_schedule_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(25, lambda: seen.append(("second", sim.now)))

        sim.schedule(10, first)
        sim.run()
        assert seen == [("first", 10), ("second", 35)]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        for t in (10, 20, 30):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run(until=20)
        assert seen == [10, 20]
        sim.run()
        assert seen == [10, 20, 30]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for t in (1, 2, 3):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run(max_events=2)
        assert seen == [1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_zero_delay_runs_at_now(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule(0, lambda: seen.append(sim.now)))
        seen = []
        sim.run()
        assert seen == [10]

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_run_until_idle(self):
        sim = Simulator()
        state = {"done": False}

        def finish():
            state["done"] = True

        sim.schedule(5, lambda: None)
        sim.schedule(10, finish)
        sim.schedule(20, lambda: None)
        sim.run_until_idle(lambda: state["done"])
        assert sim.now == 10


class TestFreelist:
    """Executed and reaped events recycle through the queue's slab."""

    def test_executed_events_are_recycled(self):
        sim = Simulator()
        seen = []

        def chain():
            if len(seen) < 5:
                handle = sim.schedule(1, chain)
                seen.append(handle)

        sim.schedule(1, chain)
        sim.run()
        # Steady-state rescheduling recycles handles: the executing event
        # returns to the freelist only after its callback finishes, so a
        # single train ping-pongs between (at most) two objects instead
        # of allocating five.
        assert len(set(map(id, seen))) <= 2

    def test_no_allocation_in_steady_state(self):
        sim = Simulator()
        count = {"n": 0}

        def fire():
            count["n"] += 1
            if count["n"] < 1000:
                sim.schedule(3, fire)

        sim.schedule(1, fire)
        before = len(sim.queue._free)
        sim.run()
        # One live train running 1000 events allocates at most two Event
        # objects total (the ping-pong pair); the freelist holds them at
        # the end instead of having churned a thousand allocations.
        assert len(sim.queue._free) <= before + 2

    def test_reset_discards_freelist_and_counters(self):
        sim = Simulator()
        handle = sim.schedule(1, lambda: None)
        handle.cancel()
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_skipped == 1
        sim.reset()
        assert sim.events_skipped == 0
        assert len(sim.queue._free) == 0
        assert sim.queue._seq == 0

    def test_cancelled_events_counted_by_pop_and_peek(self):
        q = EventQueue()
        a = q.push(1, lambda: None)
        q.push(2, lambda: None)
        b = q.push(3, lambda: None)
        a.cancel()
        b.cancel()
        assert q.peek_tick() == 2  # reaps the cancelled head
        assert q.skipped_cancelled == 1
        assert q.pop().when == 2
        assert q.pop() is None  # reaps the trailing cancelled event
        assert q.skipped_cancelled == 2

    def test_cancel_after_completion_is_rejected(self):
        # A released handle (fired, sitting on the freelist) must refuse
        # cancel() rather than silently killing a future recycled event.
        sim = Simulator()
        handle = sim.schedule(1, lambda: None)
        sim.run()
        with pytest.raises(RuntimeError, match="completed event handle"):
            handle.cancel()

    def test_run_counts_skipped_cancelled(self):
        sim = Simulator()
        for tick in (1, 2, 3, 4):
            handle = sim.schedule(tick, lambda: None)
            if tick % 2:
                handle.cancel()
        sim.run()
        assert sim.events_executed == 2
        assert sim.events_skipped == 2


class TestQuiesceThrottle:
    """run_until_idle backs off the predicate without changing results."""

    def test_long_run_checks_quiesce_sparsely(self):
        sim = Simulator()
        checks = {"n": 0}
        count = {"n": 0}
        total = 5000

        def fire():
            count["n"] += 1
            if count["n"] < total:
                sim.schedule(1, fire)

        def quiesce():
            checks["n"] += 1
            return count["n"] >= total

        sim.schedule(1, fire)
        sim.run_until_idle(quiesce)
        assert count["n"] == total
        # Backed off: far fewer predicate calls than events executed.
        assert checks["n"] < total / 4

    def test_quiesce_holds_when_returning(self):
        sim = Simulator()
        state = {"fired": 0}

        def fire():
            state["fired"] += 1
            if state["fired"] < 300:
                sim.schedule(1, fire)

        sim.schedule(1, fire)
        # The predicate turns true mid-run; the throttle may overrun by
        # up to the current interval, but it must never return while the
        # predicate is false.
        target = 100
        final = sim.run_until_idle(lambda: state["fired"] >= target)
        assert state["fired"] >= target

    def test_short_runs_keep_exact_stop_tick(self):
        # Below the backoff threshold the historical check-per-event
        # behaviour is exact: the run stops at the quiescing event.
        sim = Simulator()
        seen = []
        for tick in (1, 2, 3, 4, 5):
            sim.schedule(tick, lambda t=tick: seen.append(t))
        sim.run_until_idle(lambda: len(seen) == 3)
        assert sim.now == 3
        assert seen == [1, 2, 3]
