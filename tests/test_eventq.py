"""Unit tests for the event queue and simulator driver."""

import pytest

from repro.sim.eventq import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    EventQueue,
    Simulator,
)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(30, lambda: order.append(30))
        q.push(10, lambda: order.append(10))
        q.push(20, lambda: order.append(20))
        while (event := q.pop()) is not None:
            event.callback()
        assert order == [10, 20, 30]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        order = []
        for label in "abc":
            q.push(5, lambda l=label: order.append(l))
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_priority_beats_insertion_order(self):
        q = EventQueue()
        order = []
        q.push(5, lambda: order.append("late"), priority=PRIORITY_LATE)
        q.push(5, lambda: order.append("early"), priority=PRIORITY_EARLY)
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["early", "late"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        handle = q.push(1, lambda: fired.append("cancelled"))
        q.push(2, lambda: fired.append("kept"))
        handle.cancel()
        while (event := q.pop()) is not None:
            event.callback()
        assert fired == ["kept"]

    def test_peek_tick_skips_cancelled(self):
        q = EventQueue()
        handle = q.push(1, lambda: None)
        q.push(7, lambda: None)
        handle.cancel()
        assert q.peek_tick() == 7

    def test_peek_empty(self):
        assert EventQueue().peek_tick() is None

    def test_len(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2


class TestSimulator:
    def test_time_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.schedule(50, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [50, 100]
        assert sim.now == 100

    def test_schedule_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(25, lambda: seen.append(("second", sim.now)))

        sim.schedule(10, first)
        sim.run()
        assert seen == [("first", 10), ("second", 35)]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        for t in (10, 20, 30):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run(until=20)
        assert seen == [10, 20]
        sim.run()
        assert seen == [10, 20, 30]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for t in (1, 2, 3):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run(max_events=2)
        assert seen == [1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_zero_delay_runs_at_now(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule(0, lambda: seen.append(sim.now)))
        seen = []
        sim.run()
        assert seen == [10]

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_run_until_idle(self):
        sim = Simulator()
        state = {"done": False}

        def finish():
            state["done"] = True

        sim.schedule(5, lambda: None)
        sim.schedule(10, finish)
        sim.schedule(20, lambda: None)
        sim.run_until_idle(lambda: state["done"])
        assert sim.now == 10
