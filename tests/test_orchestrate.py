"""Distributed sweep orchestration: leases, backends, crash recovery,
merge bit-identity, and ResultCache concurrent-writer safety.

The subprocess tests launch real ``python -m repro orchestrate
--worker`` processes, so ``PYTHONPATH`` is arranged to cover both the
``repro`` package and this directory (the manifest's ``extra_imports``
hook pulls :mod:`orchestrate_testsweeps` in on the worker side).
"""

import json
import multiprocessing
import os
import random
import signal
import subprocess
import time
from pathlib import Path

import pytest

import orchestrate_testsweeps  # noqa: F401  (registers orch-test-slow)
from repro.orchestrate import (
    EXIT_VERSION_MISMATCH,
    Heartbeat,
    LocalBackend,
    OrchestrationError,
    RunManifest,
    ShardLease,
    SlurmBackend,
    SSHBackend,
    VersionMismatchError,
    expire_lease,
    orchestrate_run,
    prepare_run,
    read_lease,
    read_leases,
    resume_run,
    run_worker,
    spec_fingerprint,
    try_claim,
    worker_command,
    write_lease,
)
from repro.orchestrate.lease import DONE, PENDING
from repro.sweep import (
    ResultCache,
    build_sweep,
    merge_report_records,
    run_sweep,
)

TESTS_DIR = Path(__file__).resolve().parent
SRC_DIR = TESTS_DIR.parent / "src"


def _quiet(_message: str) -> None:
    pass


@pytest.fixture
def worker_env(monkeypatch):
    """Subprocess workers must import repro *and* the test sweeps."""
    monkeypatch.setenv(
        "PYTHONPATH", os.pathsep.join([str(SRC_DIR), str(TESTS_DIR)])
    )


def _slow_sweeps(points=6, delay=0.05):
    return [{"name": "orch-test-slow",
             "overrides": {"points": points, "delay": delay}}]


def _serial_records(points=6, delay=0.05):
    spec = build_sweep("orch-test-slow", points=points, delay=delay)
    report = run_sweep(spec, workers=1, cache=False)
    return {repr(o.key): o.record for o in report.outcomes}


# ----------------------------------------------------------------------
# Manifest: pinning and the mixed-version refusal
# ----------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = prepare_run(
            tmp_path / "run", _slow_sweeps(), tmp_path / "cache",
            shards=3, lease_ttl=12.5,
        )
        loaded = RunManifest.load(tmp_path / "run")
        assert loaded.shards == 3
        assert loaded.lease_ttl == 12.5
        assert loaded.code == manifest.code
        assert loaded.fingerprints == manifest.fingerprints
        # One pending lease per shard was materialized.
        leases = read_leases(tmp_path / "run")
        assert sorted(leases) == [1, 2, 3]
        assert all(lease.state == PENDING for lease in leases.values())

    def test_fingerprint_covers_grid(self):
        small = build_sweep("orch-test-slow", points=3)
        large = build_sweep("orch-test-slow", points=4)
        assert spec_fingerprint(small) != spec_fingerprint(large)
        assert spec_fingerprint(small) == spec_fingerprint(
            build_sweep("orch-test-slow", points=3)
        )

    def test_worker_refuses_foreign_code_digest(self, tmp_path):
        prepare_run(tmp_path / "run", _slow_sweeps(), tmp_path / "cache",
                    shards=2)
        path = RunManifest.path(tmp_path / "run")
        data = json.loads(path.read_text())
        data["code"] = "0" * 64
        path.write_text(json.dumps(data))
        assert run_worker(tmp_path / "run") == EXIT_VERSION_MISMATCH
        # The dispatcher refuses the same way.
        with pytest.raises(VersionMismatchError):
            orchestrate_run(tmp_path / "run", LocalBackend(workers=1),
                            log=_quiet)

    def test_rebuilt_spec_must_match_fingerprint(self, tmp_path):
        prepare_run(tmp_path / "run", _slow_sweeps(), tmp_path / "cache",
                    shards=2)
        path = RunManifest.path(tmp_path / "run")
        data = json.loads(path.read_text())
        data["fingerprints"]["orch-test-slow"] = "f" * 64
        path.write_text(json.dumps(data))
        with pytest.raises(VersionMismatchError, match="fingerprint"):
            RunManifest.load(tmp_path / "run").build_specs(verify=True)

    def test_prepare_refuses_existing_run(self, tmp_path):
        prepare_run(tmp_path / "run", _slow_sweeps(), tmp_path / "cache",
                    shards=2)
        with pytest.raises(FileExistsError, match="resume"):
            prepare_run(tmp_path / "run", _slow_sweeps(),
                        tmp_path / "cache", shards=2)


# ----------------------------------------------------------------------
# Leases: atomic claims, expiry, heartbeat loss
# ----------------------------------------------------------------------
class TestLeases:
    def test_claim_is_exclusive_per_attempt(self, tmp_path):
        lease = ShardLease(index=1, total=2)
        write_lease(tmp_path, lease)
        first = read_lease(tmp_path, 1)
        second = read_lease(tmp_path, 1)
        assert try_claim(tmp_path, first, "worker-a")
        assert not try_claim(tmp_path, second, "worker-b")
        assert read_lease(tmp_path, 1).owner == "worker-a"

    def test_expire_bumps_attempt_and_reopens_claim(self, tmp_path):
        lease = ShardLease(index=1, total=2)
        write_lease(tmp_path, lease)
        assert try_claim(tmp_path, read_lease(tmp_path, 1), "worker-a")
        expired = expire_lease(tmp_path, read_lease(tmp_path, 1))
        assert expired.state == PENDING and expired.attempt == 2
        assert try_claim(tmp_path, read_lease(tmp_path, 1), "worker-b")
        assert read_lease(tmp_path, 1).owner == "worker-b"

    def test_expire_never_stomps_a_finished_shard(self, tmp_path):
        """Dispatcher races worker completion: the expiry is based on a
        stale RUNNING snapshot, but the worker marked the shard done in
        the meantime -- the guarded expire must leave DONE alone."""
        lease = ShardLease(index=1, total=1)
        write_lease(tmp_path, lease)
        assert try_claim(tmp_path, lease, "worker-a")
        stale_snapshot = read_lease(tmp_path, 1)   # RUNNING, attempt 1
        finished = read_lease(tmp_path, 1)
        finished.state = DONE
        finished.misses = 3
        write_lease(tmp_path, finished)
        refreshed = expire_lease(tmp_path, stale_snapshot)
        assert refreshed.state == DONE and refreshed.attempt == 1
        assert read_lease(tmp_path, 1).state == DONE

    def test_burned_claim_is_healed_by_dispatcher(self, tmp_path,
                                                  worker_env):
        """A claimant killed between winning the claim marker and
        writing the running state leaves a pending lease whose attempt
        can never be claimed; the poll loop must bump it."""
        from repro.orchestrate.lease import claim_marker_path

        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        prepare_run(run_dir, _slow_sweeps(points=4, delay=0.02),
                    cache_dir, shards=2, lease_ttl=0.5,
                    extra_imports=["orchestrate_testsweeps"])
        marker = claim_marker_path(run_dir, 1, 1)
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text("corpse")
        ancient = time.time() - 60.0
        os.utime(marker, (ancient, ancient))

        payload = orchestrate_run(
            run_dir, LocalBackend(workers=1), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        final = read_lease(run_dir, 1)
        assert final.state == DONE and final.attempt == 2
        assert payload["simulated_points"] == 4

    def test_heartbeat_stands_down_after_reassignment(self, tmp_path):
        lease = ShardLease(index=1, total=1)
        write_lease(tmp_path, lease)
        mine = read_lease(tmp_path, 1)
        assert try_claim(tmp_path, mine, "worker-a")
        beat = Heartbeat(tmp_path, mine, interval=0.05)
        beat.start()
        time.sleep(0.15)
        assert read_lease(tmp_path, 1).heartbeat > 0
        # Dispatcher reassigns; the usurper claims attempt 2.
        expire_lease(tmp_path, read_lease(tmp_path, 1))
        assert try_claim(tmp_path, read_lease(tmp_path, 1), "worker-b")
        deadline = time.time() + 2.0
        while not beat.lost and time.time() < deadline:
            time.sleep(0.05)
        beat.stop()
        assert beat.lost
        # worker-b's ledger entry was not clobbered by worker-a.
        final = read_lease(tmp_path, 1)
        assert final.owner == "worker-b" and final.attempt == 2


# ----------------------------------------------------------------------
# Backends: command generation (no remote infrastructure needed)
# ----------------------------------------------------------------------
class TestBackends:
    def test_worker_command_shape(self):
        cmd = worker_command("/runs/r1", "w7")
        assert cmd[1:5] == ["-m", "repro", "orchestrate", "--worker"]
        assert "/runs/r1" in cmd and "w7" in cmd

    def test_ssh_command_includes_prelude_and_host(self):
        backend = SSHBackend(
            hosts=["node-a", "node-b"], workers_per_host=2,
            remote_python="python3.12",
            remote_prelude="cd /shared/repo && export PYTHONPATH=src",
        )
        cmd = backend.command("node-a", "/shared/runs/r1", "w0")
        assert cmd[0] == "ssh" and "node-a" in cmd
        remote = cmd[-1]
        assert remote.startswith("cd /shared/repo")
        assert "python3.12" in remote and "--worker" in remote
        assert backend.describe() == "ssh (2 hosts x 2 workers)"

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="host"):
            SSHBackend(hosts=[])

    def test_spawn_retries_transient_errors_with_deterministic_backoff(
        self, tmp_path, monkeypatch
    ):
        import repro.orchestrate.backends as backends_mod

        class FakeProc:
            def poll(self):
                return None

            def terminate(self):
                pass

            def wait(self, timeout=None):
                return 0

        failures = {"left": 2}
        naps = []

        def flaky_popen(*args, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient spawn failure")
            return FakeProc()

        monkeypatch.setattr(backends_mod.subprocess, "Popen", flaky_popen)
        monkeypatch.setattr(backends_mod.time, "sleep", naps.append)
        backend = LocalBackend(workers=1)
        backend._spawn_proc(tmp_path, ["worker"], "w0", env={})
        assert backend.spawn_retries == 2
        # Jitter-free exponential schedule: 0.05 s, then 0.1 s.
        assert naps == [backends_mod.SPAWN_BACKOFF_SECONDS,
                        backends_mod.SPAWN_BACKOFF_SECONDS * 2]
        backend.shutdown()

    def test_spawn_gives_up_after_bounded_attempts(self, tmp_path,
                                                   monkeypatch):
        import repro.orchestrate.backends as backends_mod

        attempts = []

        def always_fails(*args, **kwargs):
            attempts.append(1)
            raise OSError("no such executable")

        monkeypatch.setattr(backends_mod.subprocess, "Popen", always_fails)
        monkeypatch.setattr(backends_mod.time, "sleep", lambda _s: None)
        backend = LocalBackend(workers=1)
        with pytest.raises(OSError, match="no such executable"):
            backend._spawn_proc(tmp_path, ["worker"], "w0", env={})
        assert len(attempts) == backends_mod.SPAWN_RETRY_LIMIT
        assert backend.spawn_retries == backends_mod.SPAWN_RETRY_LIMIT - 1

    def test_slurm_script_is_an_array_job(self, tmp_path):
        backend = SlurmBackend(workers=5, partition="batch",
                               remote_prelude="module load python")
        backend.launch(tmp_path)
        script = (tmp_path / "sbatch.sh").read_text()
        assert "#SBATCH --array=0-4" in script
        assert "#SBATCH --partition=batch" in script
        assert "module load python" in script
        assert "--worker" in script and str(tmp_path) in script
        # Script-only mode holds no liveness claims.
        assert backend.dead_owners() == set()
        assert backend.live_count() == 0


# ----------------------------------------------------------------------
# The acceptance path: two local workers == one serial run
# ----------------------------------------------------------------------
class TestLocalOrchestration:
    def test_two_workers_merge_bit_identical_to_serial(
        self, tmp_path, worker_env
    ):
        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        prepare_run(
            run_dir, _slow_sweeps(points=6, delay=0.05), cache_dir,
            shards=4, lease_ttl=30.0,
            extra_imports=["orchestrate_testsweeps"],
        )
        payload = orchestrate_run(
            run_dir, LocalBackend(workers=2), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        merged = {p["key"]: p["record"]
                  for p in payload["sweeps"][0]["points"]}
        assert merged == _serial_records(points=6, delay=0.05)
        # Every point simulated exactly once, none left for the replay.
        assert payload["simulated_points"] == 6
        assert payload["replay_simulated"] == 0
        assert (run_dir / "report.json").is_file()
        assert len(ResultCache(cache_dir)) == 6
        leases = read_leases(run_dir)
        assert all(lease.state == DONE for lease in leases.values())

    def test_fleet_telemetry_lands_in_shard_provenance(
        self, tmp_path, worker_env, monkeypatch
    ):
        """Workers inherit the telemetry session through the environment
        channel; their shard reports carry capture counts that the
        dispatcher surfaces in ``shard_provenance`` -- while the merged
        point records stay bit-identical to an untraced serial run."""
        from repro.telemetry import TELEMETRY_ENV, TelemetrySettings

        spec = build_sweep("access-modes", size=24)
        serial = {repr(o.key): o.record
                  for o in run_sweep(spec, workers=1, cache=False).outcomes}

        trace_dir = tmp_path / "telemetry"
        settings = TelemetrySettings(trace=True, trace_dir=str(trace_dir),
                                     diagnostics=True)
        monkeypatch.setenv(TELEMETRY_ENV, json.dumps(settings.to_json()))
        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        prepare_run(
            run_dir, [{"name": "access-modes", "overrides": {"size": 24}}],
            cache_dir, shards=2, lease_ttl=30.0,
        )
        payload = orchestrate_run(
            run_dir, LocalBackend(workers=2), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        merged = {p["key"]: p["record"]
                  for p in payload["sweeps"][0]["points"]}
        assert merged == serial
        telemetries = [entry.get("telemetry")
                       for entry in payload["shard_provenance"]]
        captured = sum(t["captured_points"] for t in telemetries if t)
        assert captured == len(serial)
        assert all(t["trace_dir"] == str(trace_dir)
                   for t in telemetries if t)
        # Each simulated point left a Chrome trace artifact on disk.
        assert len(list(trace_dir.glob("*.trace.json"))) == len(serial)

    def test_merge_hooks_reject_conflicting_shards(self):
        base = {"spec": "s", "hits": 0, "misses": 1,
                "points": [{"key": "0", "key_hash": "h", "cached": False,
                            "record": {"v": 1}}]}
        other = json.loads(json.dumps(base))
        other["points"][0]["record"] = {"v": 2}
        with pytest.raises(ValueError, match="disagree"):
            merge_report_records([base, other])
        # Identical duplicates (a reassigned shard) merge fine.
        merged = merge_report_records([base, json.loads(json.dumps(base))])
        assert len(merged["points"]) == 1
        with pytest.raises(ValueError, match="different sweeps"):
            merge_report_records([base, dict(base, spec="t")])

    def test_merge_refuses_malformed_shard_records(self):
        """Counter-less shard records must refuse, not merge as zero.

        Regression: ``merge_report_records`` used to read hit/miss
        counters with ``.get(..., 0)``, so a truncated or wrong-format
        shard file silently contributed nothing and the fleet total
        looked plausible.  Shape mismatches now name the offending
        record and field.
        """
        base = {"spec": "s", "hits": 1, "misses": 2,
                "points": [{"key": "0", "key_hash": "h", "cached": False,
                            "record": {"v": 1}}]}
        for field in ("spec", "points", "hits", "misses"):
            broken = {k: v for k, v in base.items() if k != field}
            with pytest.raises(ValueError) as err:
                merge_report_records([base, broken])
            message = str(err.value)
            assert "#1" in message and field in message
        with pytest.raises(ValueError, match="not a report record"):
            merge_report_records([base, "oops"])
        # Intact records still merge, counters summed exactly.
        twin = dict(base, points=[{"key": "1", "key_hash": "h2",
                                   "cached": True, "record": {"v": 2}}])
        merged = merge_report_records([base, twin])
        assert (merged["hits"], merged["misses"]) == (2, 4)


# ----------------------------------------------------------------------
# Crash injection: SIGKILL a worker mid-shard, resume, verify
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_killed_worker_resume_is_bit_identical_and_incremental(
        self, tmp_path, worker_env
    ):
        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        points, delay = 6, 0.4
        prepare_run(
            run_dir, _slow_sweeps(points=points, delay=delay), cache_dir,
            shards=2, lease_ttl=1.0,
            extra_imports=["orchestrate_testsweeps"],
        )
        cache = ResultCache(cache_dir)
        proc = subprocess.Popen(
            worker_command(run_dir, "victim"),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=dict(os.environ),
        )
        try:
            # Wait for the worker to land its first point, then murder
            # it mid-shard (each shard holds 3 points x 0.4 s).
            deadline = time.time() + 120.0
            while len(cache) < 1:
                if proc.poll() is not None:
                    out = proc.stdout.read().decode(errors="replace")
                    pytest.fail(f"worker exited early:\n{out}")
                if time.time() > deadline:
                    pytest.fail("worker never produced a cache entry")
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
        cached_at_kill = len(cache)
        assert 1 <= cached_at_kill < points
        leases = read_leases(run_dir)
        assert any(lease.state != DONE for lease in leases.values())

        # Resume via the --resume path: fresh local fleet, same cache.
        payload = resume_run(
            run_dir, LocalBackend(workers=2), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        merged = {p["key"]: p["record"]
                  for p in payload["sweeps"][0]["points"]}
        assert merged == _serial_records(points=points, delay=delay)
        # The no-recompute assertion, by cache-hit counters: everything
        # the dead worker finished replays as hits, only the remainder
        # simulates, and the final replay recomputes nothing.
        assert payload["replayed_points"] == cached_at_kill
        assert payload["simulated_points"] == points - cached_at_kill
        assert payload["replay_simulated"] == 0
        assert len(cache) == points

    def test_chaos_hammer_is_bit_identical_to_serial(self, tmp_path,
                                                     worker_env):
        """Seeded chaos rounds: raw workers randomly SIGKILLed or
        SIGSTOP/SIGCONT-paused mid-shard, repeatedly, then the run is
        resumed with a fresh fleet.  The merged report must equal the
        serial ground truth with every point exactly once (no shard
        double-merged, nothing recomputed at merge time) -- the
        at-most-once merge and lease machinery under fire."""
        rng = random.Random(1234)
        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        points, delay = 8, 0.25
        prepare_run(
            run_dir, _slow_sweeps(points=points, delay=delay), cache_dir,
            shards=4, lease_ttl=1.0,
            extra_imports=["orchestrate_testsweeps"],
        )
        cache = ResultCache(cache_dir)

        def spawn(worker_id):
            return subprocess.Popen(
                worker_command(run_dir, worker_id),
                stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
                env=dict(os.environ),
            )

        spawned = []
        try:
            for round_no in range(3):
                procs = [spawn(f"chaos-{round_no}-{i}") for i in range(2)]
                spawned.extend(procs)
                # Let the fleet make some progress (or give up claiming:
                # stale RUNNING leases are the dispatcher's to expire).
                baseline = len(cache)
                deadline = time.time() + 60.0
                while time.time() < deadline:
                    if len(cache) > baseline:
                        break
                    if all(proc.poll() is not None for proc in procs):
                        break
                    time.sleep(0.05)
                for proc in procs:
                    if proc.poll() is not None:
                        continue
                    if rng.random() < 0.5:
                        proc.send_signal(signal.SIGKILL)
                    else:
                        # Pause through the lease TTL so the heartbeat
                        # goes stale, wake briefly, then murder anyway.
                        proc.send_signal(signal.SIGSTOP)
                        time.sleep(rng.uniform(0.1, 0.5))
                        proc.send_signal(signal.SIGCONT)
                        proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                if len(cache) >= points:
                    break
        finally:
            for proc in spawned:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        payload = resume_run(
            run_dir, LocalBackend(workers=2), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        merged_points = payload["sweeps"][0]["points"]
        merged = {p["key"]: p["record"] for p in merged_points}
        assert merged == _serial_records(points=points, delay=delay)
        assert len(merged_points) == points   # no shard double-merged
        assert payload["replay_simulated"] == 0
        assert all(lease.state == DONE
                   for lease in read_leases(run_dir).values())

    def test_dispatcher_reassigns_stale_lease_without_a_corpse(
        self, tmp_path, worker_env
    ):
        """A lease whose heartbeat went silent (no process to observe)
        is expired by the poll loop and finished by a live worker."""
        run_dir, cache_dir = tmp_path / "run", tmp_path / "cache"
        prepare_run(
            run_dir, _slow_sweeps(points=4, delay=0.02), cache_dir,
            shards=2, lease_ttl=0.5,
            extra_imports=["orchestrate_testsweeps"],
        )
        # Forge a dead worker: shard 1 claimed long ago, never updated.
        lease = read_lease(run_dir, 1)
        assert try_claim(run_dir, lease, "ghost")
        lease.heartbeat = time.time() - 3600.0
        lease.claimed_at = lease.heartbeat
        write_lease(run_dir, lease)

        payload = orchestrate_run(
            run_dir, LocalBackend(workers=1), poll_interval=0.1,
            log=_quiet, timeout=180.0,
        )
        final = read_lease(run_dir, 1)
        assert final.state == DONE
        assert final.attempt == 2          # reassigned exactly once
        assert final.owner != "ghost"
        assert payload["simulated_points"] == 4

    def test_exhausted_fleet_fails_instead_of_hanging(self, tmp_path,
                                                      worker_env):
        """Workers that all die before claiming anything (e.g. wrong
        tree) must surface as an error, not an eternal poll loop."""
        run_dir = tmp_path / "run"
        prepare_run(run_dir, _slow_sweeps(points=2, delay=0.0),
                    tmp_path / "cache", shards=1, lease_ttl=30.0,
                    extra_imports=["orchestrate_testsweeps"])
        # Stand in for a fleet that always crashes at startup: every
        # spawn is /bin/false, so no worker ever claims a shard.
        backend = LocalBackend(workers=1, max_spawns=2)

        def spawn_false(run_dir_arg):
            worker_id = f"false-w{backend._spawned}"
            backend._spawn_proc(run_dir_arg, ["/bin/false"], worker_id,
                                env=dict(os.environ))

        backend._spawn = spawn_false  # type: ignore[method-assign]
        with pytest.raises(OrchestrationError, match="dying"):
            orchestrate_run(run_dir, backend, poll_interval=0.05,
                            log=_quiet, timeout=60.0)

    def test_out_of_attempts_fails_loudly(self, tmp_path):
        run_dir = tmp_path / "run"
        prepare_run(run_dir, _slow_sweeps(points=2, delay=0.0),
                    tmp_path / "cache", shards=1, lease_ttl=0.2)

        class NoWorkers:
            def describe(self):
                return "black hole"

            def launch(self, run_dir):
                pass

            def maintain(self, run_dir, pending):
                # Claim the shard but never heartbeat: every attempt
                # looks dead and expires.
                for lease in read_leases(run_dir).values():
                    if lease.state == PENDING:
                        if try_claim(run_dir, lease, "void"):
                            stale = read_lease(run_dir, lease.index)
                            stale.heartbeat = time.time() - 60.0
                            write_lease(run_dir, stale)

            def dead_owners(self):
                return set()

            def shutdown(self):
                pass

        with pytest.raises(OrchestrationError, match="giving up"):
            orchestrate_run(run_dir, NoWorkers(), poll_interval=0.05,
                            max_attempts=2, log=_quiet, timeout=60.0)


# ----------------------------------------------------------------------
# ResultCache under concurrent writers + maintenance
# ----------------------------------------------------------------------
def _put_worker(cache_dir, start, count):
    cache = ResultCache(cache_dir)
    for i in range(start, start + count):
        cache.put(f"{i:064x}", {"value": i}, meta={"sweep": "writer"})


class TestResultCacheConcurrency:
    def test_concurrent_writers_survive_prune_and_summarize(self, tmp_path):
        """Two writer processes vs. a maintenance loop: nothing dropped,
        stats never corrupted.  Before the ``.part`` fix, prune/clear
        could delete a writer's in-flight temp file between write and
        rename, making ``os.replace`` fail and silently dropping the
        finished record."""
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        cache.put("seed" * 16, {"value": -1}, meta={"sweep": "other"})
        per_writer = 120
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        writers = [
            ctx.Process(target=_put_worker,
                        args=(str(cache_dir), w * per_writer, per_writer))
            for w in range(2)
        ]
        for writer in writers:
            writer.start()
        # Maintenance hammering the same directory the whole time.
        while any(writer.is_alive() for writer in writers):
            cache.prune("no-such-sweep")
            summary = cache.summarize()
            assert summary["entries"] >= 0
            len(cache)
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        assert len(cache) == 2 * per_writer + 1
        for i in range(2 * per_writer):
            assert cache.get(f"{i:064x}") == {"value": i}
        summary = cache.summarize()
        assert summary["sweeps"]["writer"] == 2 * per_writer

    def test_inflight_temp_files_invisible_to_maintenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("a" * 64, {"value": 1}, meta={"sweep": "s"})
        # A writer parked between write and rename: complete JSON, temp
        # name.  Maintenance must neither count nor delete it.
        parked = cache.root / ".tmp-parked.part"
        parked.write_text(json.dumps(
            {"record": {"value": 2}, "meta": {"sweep": "s"}}
        ))
        assert len(cache) == 1
        assert [p.name for p, _ in cache.entries()] == [f"{'a' * 64}.json"]
        assert cache.summarize()["entries"] == 1
        assert cache.prune("s") == 1          # the real entry only
        assert parked.exists()                # in-flight file untouched
        # clear() leaves a *young* temp alone (its writer may be alive)
        # but sweeps one old enough to be abandoned.
        assert cache.clear() == 0
        assert parked.exists()
        ancient = time.time() - 7200.0
        os.utime(parked, (ancient, ancient))
        assert cache.clear() == 0
        assert not parked.exists()

    def test_atomic_write_json_fsyncs_data_before_rename(self, tmp_path,
                                                         monkeypatch):
        """The durability contract: flush + fsync the temp file *before*
        ``os.replace`` (else a crash can leave the final name pointing
        at zero-length data), plus a best-effort directory fsync after."""
        from repro.sweep.cache import atomic_write_json

        synced = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        real_replace = os.replace

        def spy_replace(src, dst):
            assert synced, "temp file must be fsynced before the rename"
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        target = tmp_path / "entry.json"
        atomic_write_json(target, {"value": 1})
        assert json.loads(target.read_text()) == {"value": 1}
        # One data-file fsync pre-rename, one directory fsync post-rename.
        assert len(synced) == 2

    def test_prune_tolerates_vanishing_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for i in range(5):
            cache.put(f"{i:064x}", {"value": i}, meta={"sweep": "s"})
        # Simulate a racing pruner deleting files mid-walk.
        victims = list(cache._entry_paths())
        for victim in victims[::2]:
            victim.unlink()
        removed = cache.prune("s")
        assert removed == len(victims) - len(victims[::2])
        assert len(cache) == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestOrchestrateCLI:
    def test_cli_local_end_to_end(self, tmp_path, worker_env, capsys):
        from repro.__main__ import main

        run_dir = tmp_path / "run"
        assert main([
            "orchestrate", "--name", "access-modes", "--size", "24",
            "--backend", "local", "--workers", "2", "--shards", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--run-dir", str(run_dir),
            "--poll-interval", "0.1", "--timeout", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 points merged across 3 shard(s)" in out
        report = json.loads((run_dir / "report.json").read_text())
        assert report["simulated_points"] == 3
        # A plain sweep over the same cache dir replays everything.
        spec = build_sweep("access-modes", size=24)
        replay = run_sweep(spec, workers=1,
                           cache_dir=tmp_path / "cache")
        assert replay.fully_cached

    def test_cli_slurm_script_only(self, tmp_path, capsys):
        from repro.__main__ import main

        run_dir = tmp_path / "run"
        assert main([
            "orchestrate", "--name", "access-modes", "--size", "24",
            "--backend", "slurm", "--workers", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--run-dir", str(run_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "sbatch" in out and "--resume" in out
        script = (run_dir / "sbatch.sh").read_text()
        assert "#SBATCH --array=0-2" in script

    def test_cli_reused_run_dir_is_a_clean_error(self, tmp_path):
        from repro.__main__ import main

        prepare_run(tmp_path / "run", _slow_sweeps(), tmp_path / "cache",
                    shards=2)
        with pytest.raises(SystemExit, match="resume"):
            main([
                "orchestrate", "--name", "access-modes", "--size", "24",
                "--run-dir", str(tmp_path / "run"),
                "--cache-dir", str(tmp_path / "cache"),
            ])

    def test_cli_resume_without_manifest_is_a_clean_error(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="manifest"):
            main(["orchestrate", "--resume", str(tmp_path / "nowhere")])

    def test_cli_requires_name_or_resume(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--name"):
            main(["orchestrate"])

    def test_cli_rejects_unknown_sweep(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["orchestrate", "--name", "no-such-experiment"])
