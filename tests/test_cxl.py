"""Unit and integration tests for the CXL-style interconnect extension."""

import pytest

from repro import SystemConfig, run_gemm
from repro.core.system import AcceSysSystem
from repro.interconnect.cxl import (
    CXL_FLIT_OVERHEAD,
    CXL_FLIT_PAYLOAD,
    CXLFabric,
    cxl_hops,
    cxl_link_config,
)
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction

GB = 10**9


class TestLinkConfig:
    def test_flit_geometry(self):
        config = cxl_link_config()
        assert config.tlp.max_payload == CXL_FLIT_PAYLOAD == 64
        assert config.tlp.header_bytes == CXL_FLIT_OVERHEAD == 4

    def test_single_hop(self):
        config = cxl_link_config()
        hops = cxl_hops(config)
        assert len(hops) == 1
        assert hops[0][0] == ns(25)

    def test_bandwidth_rides_gen5_phy(self):
        config = cxl_link_config(lanes=8, lane_gbps=32.0)
        assert config.raw_bytes_per_sec == 32 * GB

    def test_flit_efficiency(self):
        # 64/68 ~ 94% payload efficiency at line granularity.
        config = cxl_link_config()
        assert config.tlp.efficiency(64) == pytest.approx(64 / 68)


class TestFabricLatency:
    def test_round_trip_much_shorter_than_pcie(self):
        def round_trip(fabric_cls, cfg=None):
            sim = Simulator()
            host = FixedLatencyTarget(sim, "host", latency=ns(50))
            if cfg is None:
                fabric = fabric_cls(sim, "f", host_target=host)
            else:
                fabric = fabric_cls(sim, "f", cfg, host)
            done = []
            fabric.device_read(
                Transaction.read(0, 64), lambda t: done.append(sim.now)
            )
            sim.run()
            return done[0]

        from repro.interconnect.pcie import PCIeConfig, PCIeFabric

        t_pcie = round_trip(PCIeFabric, PCIeConfig())
        t_cxl = round_trip(CXLFabric)
        assert t_cxl < t_pcie / 3

    def test_describe(self):
        sim = Simulator()
        fabric = CXLFabric(sim, "cxl")
        assert "CXL" in fabric.describe()


class TestSystemIntegration:
    def test_cxl_host_system_builds(self):
        system = AcceSysSystem(SystemConfig.cxl_host())
        assert isinstance(system.fabric, CXLFabric)

    def test_devmem_cxl_system_builds(self):
        system = AcceSysSystem(SystemConfig.devmem_cxl())
        assert system.devmem is not None

    def test_unknown_interconnect_rejected(self):
        config = SystemConfig.table2_baseline(interconnect="infiniband")
        with pytest.raises(ValueError):
            AcceSysSystem(config)

    def test_gemm_runs_over_cxl(self):
        result = run_gemm(SystemConfig.cxl_host(), 64, 64, 64)
        assert result.ticks > 0

    def test_functional_correct_over_cxl(self):
        import numpy as np

        from repro.workloads import GemmWorkload

        result = run_gemm(SystemConfig.cxl_host(), 32, 48, 32,
                          functional=True, seed=9)
        workload = GemmWorkload(32, 48, 32, seed=9)
        a, b = workload.generate()
        np.testing.assert_array_equal(result.c_matrix,
                                      workload.reference(a, b))

    def test_cxl_beats_table2_pcie_on_small_gemm(self):
        """Latency-sensitive small jobs benefit from the short pipeline."""
        t_pcie = run_gemm(SystemConfig.table2_baseline(), 32, 32, 32).ticks
        t_cxl = run_gemm(
            SystemConfig.cxl_host(lanes=4, lane_gbps=5.0), 32, 32, 32
        ).ticks
        assert t_cxl < t_pcie
