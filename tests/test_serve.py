"""Tests for the result server (repro.serve).

Covers:

* pinned identity: cache dir and code digest fixed at startup and
  visible in /healthz; a mid-flight env change cannot move the cache,
* warm queries answer from cache; served records are bit-identical to
  what a direct run_sweep writes,
* single-flight coalescing: N concurrent identical cold queries cost
  exactly one simulation (asserted via the cache miss counter and the
  fill-points probe),
* distinct cold misses batch into one fill run,
* SSE progress events, prefetch, HTTP error mapping,
* stale-tree refusal: fills are refused once the source digest drifts
  from the pinned one, while cached queries keep serving,
* cache-prune hammer: concurrent prunes never corrupt in-flight fills.
"""

import json
import threading
import time
import http.client
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import SystemConfig
from repro.sweep import SWEEPS, ResultCache, register_sweep, run_sweep
from repro.sweep.spec import SweepSpec, gemm_points
from repro.serve import ServeSettings, ServerThread, SingleFlight

SIZE = 24
PACKETS = (64, 128, 256, 512)
SWEEP = "serve-test"


def _spec() -> SweepSpec:
    base = SystemConfig.table2_baseline()
    configs = {packet: base.with_packet_size(packet) for packet in PACKETS}
    return SweepSpec(name=SWEEP, points=gemm_points(configs, SIZE))


@pytest.fixture(scope="module", autouse=True)
def _registered_sweep():
    register_sweep(SWEEP)(_spec)
    yield
    SWEEPS.pop(SWEEP, None)


@pytest.fixture
def server(tmp_path):
    settings = ServeSettings(port=0, cache_dir=str(tmp_path / "cache"),
                             batch_window=0.02)
    with ServerThread(settings) as st:
        yield st


def request(st, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection(st.host, st.port, timeout=timeout)
    try:
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def query(st, key, sweep=SWEEP, timeout=120):
    status, data = request(st, "POST", "/query",
                           {"sweep": sweep, "key": key}, timeout=timeout)
    return status, json.loads(data)


def keys():
    return [repr(point.key) for point in _spec().points]


class TestPinnedIdentity:
    def test_healthz_reports_cache_dir_and_code(self, server):
        from repro.sweep.cache import code_version

        status, data = request(server, "GET", "/healthz")
        health = json.loads(data)
        assert status == 200 and health["status"] == "ok"
        assert health["cache_dir"] == server.service.cache_dir
        assert health["code"] == code_version()

    def test_env_change_after_startup_cannot_move_cache(
        self, tmp_path, monkeypatch
    ):
        pinned = tmp_path / "pinned"
        moved = tmp_path / "moved"
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(pinned))
        with ServerThread(ServeSettings(port=0, batch_window=0.0)) as st:
            # The dir was resolved at construction; flipping the env
            # now must not redirect later fills.
            monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(moved))
            status, payload = query(st, keys()[0])
            assert status == 200
            assert json.loads(request(st, "GET", "/healthz")[1])[
                "cache_dir"] == str(pinned)
        assert len(ResultCache(pinned)) == 1
        assert not moved.exists() or len(ResultCache(moved)) == 0


class TestQueryPath:
    def test_cold_then_warm_and_bit_identity(self, server, tmp_path):
        key = keys()[0]
        status, cold = query(server, key)
        assert status == 200
        assert cold["cached"] is False and cold["coalesced"] is False
        status, warm = query(server, key)
        assert status == 200
        assert warm["cached"] is True
        assert warm["record"] == cold["record"]
        # Bit-identity against a direct engine run in a fresh cache:
        # the server is a front end over the same records, not a
        # second source of truth.
        direct = run_sweep(_spec(), workers=1,
                           cache_dir=tmp_path / "direct")
        direct_record = direct.outcomes[0].record
        assert cold["record"] == direct_record
        assert (json.dumps(cold["record"], sort_keys=True)
                == json.dumps(direct_record, sort_keys=True))

    def test_get_query_string_form(self, server):
        from urllib.parse import quote

        key = keys()[0]
        status, payload = request(
            server, "GET",
            f"/query?sweep={SWEEP}&key={quote(key)}")
        assert status == 200
        assert json.loads(payload)["key"] == key

    def test_unknown_sweep_and_point_are_404(self, server):
        status, payload = query(server, keys()[0], sweep="no-such-sweep")
        assert status == 404 and "unknown sweep" in payload["error"]
        status, payload = query(server, "'no-such-point'")
        assert status == 404 and "no point keyed" in payload["error"]

    def test_malformed_requests_are_400(self, server):
        status, data = request(server, "POST", "/query", {"sweep": SWEEP})
        assert status == 400
        status, data = request(server, "POST", "/query",
                               {"sweep": SWEEP, "key": keys()[0],
                                "args": "not-a-dict"})
        assert status == 400
        assert b"args" in data


class TestCoalescing:
    def test_concurrent_identical_queries_simulate_once(self, server):
        """Eight identical cold queries -> exactly one simulation.

        Counter accounting is deterministic by construction: the
        in-flight registry is checked before the cache, so one flight
        costs exactly two cache misses (the leader's query-path probe
        plus the fill engine's own lookup) however many clients wait.
        """
        key = keys()[1]
        clients = 8
        with ThreadPoolExecutor(clients) as pool:
            results = list(pool.map(
                lambda _: query(server, key), range(clients)))
        assert all(status == 200 for status, _ in results)
        records = [payload["record"] for _, payload in results]
        assert all(record == records[0] for record in records)
        service = server.service
        assert service.fill_points == 1  # the fill-count probe
        assert service.fill_runs == 1
        assert service.cache.misses == 2
        assert service.singleflight.coalesced == clients - 1
        assert sum(payload["coalesced"]
                   for _, payload in results) == clients - 1

    def test_distinct_misses_share_one_fill_run(self, tmp_path):
        settings = ServeSettings(port=0, cache_dir=str(tmp_path),
                                 batch_window=0.3)
        with ServerThread(settings) as st:
            targets = keys()[:3]
            with ThreadPoolExecutor(len(targets)) as pool:
                results = list(pool.map(lambda k: query(st, k), targets))
            assert all(status == 200 for status, _ in results)
            assert st.service.fill_points == len(targets)
            assert st.service.fill_runs == 1

    def test_prefetch_then_all_warm(self, server):
        status, data = request(server, "POST", "/sweep", {"sweep": SWEEP})
        assert status == 200
        disposition = json.loads(data)
        assert disposition["enqueued"] == len(PACKETS)
        deadline = time.time() + 120
        while server.service.fill_points < len(PACKETS):
            assert time.time() < deadline, "prefetch never completed"
            time.sleep(0.02)
        for key in keys():
            status, payload = query(server, key)
            assert status == 200 and payload["cached"] is True


class TestEventsAndMetrics:
    def test_sse_streams_fill_outcomes(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=120)
        conn.request("GET", "/events")
        response = conn.getresponse()
        assert response.status == 200
        assert "text/event-stream" in response.getheader("Content-Type")
        status, _ = query(server, keys()[2])
        assert status == 200
        events, buffer = [], b""
        deadline = time.time() + 120
        while time.time() < deadline:
            chunk = response.read1(4096)
            if chunk:
                buffer += chunk
            # Frames are \n\n-delimited; only parse complete ones.
            while b"\n\n" in buffer:
                frame, buffer = buffer.split(b"\n\n", 1)
                for line in frame.decode().splitlines():
                    if line.startswith("data: "):
                        events.append(json.loads(line[len("data: "):]))
            if any(e.get("type") == "fill-done" for e in events):
                break
        conn.close()
        kinds = [event["type"] for event in events]
        assert "fill-start" in kinds and "fill-done" in kinds
        outcome = next(e for e in events if e["type"] == "outcome")
        assert outcome["sweep"] == SWEEP
        assert outcome["key"] == keys()[2]

    def test_metrics_exposition(self, server):
        query(server, keys()[0])
        query(server, keys()[0])
        status, data = request(server, "GET", "/metrics")
        assert status == 200
        text = data.decode()
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "repro_serve_fill_points_total 1" in text
        assert "repro_serve_query_hits_total 1" in text
        assert text.endswith("\n")


class TestStaleCodeRefusal:
    def test_drifted_tree_refuses_fills_but_serves_cache(
        self, server, monkeypatch
    ):
        warm_key, cold_key = keys()[0], keys()[1]
        assert query(server, warm_key)[0] == 200  # fill while valid
        import repro.serve.service as service_mod

        monkeypatch.setattr(service_mod, "fresh_code_version",
                            lambda: "f" * 64)
        status, payload = query(server, cold_key)
        assert status == 503
        assert "pinned" in payload["error"]
        assert server.service.fill_refused == 1
        # Cached entries keep serving: they match the pinned tree.
        status, payload = query(server, warm_key)
        assert status == 200 and payload["cached"] is True


class TestPruneHammer:
    def test_concurrent_prune_never_breaks_in_flight_fills(self, server):
        """`cache prune` racing the server must never 500 a query.

        Fills write atomically and resolve waiters from memory, so a
        prune that deletes an entry between fill and re-query only
        costs a re-simulation -- it can never make an in-flight result
        vanish for its waiters or corrupt a served record.
        """
        stop = threading.Event()
        pruned = {"count": 0}

        def prune_loop():
            hammer = ResultCache(server.service.cache_dir)
            while not stop.is_set():
                pruned["count"] += hammer.prune(SWEEP)
                time.sleep(0.001)

        thread = threading.Thread(target=prune_loop)
        thread.start()
        try:
            baseline = None
            for _ in range(6):
                with ThreadPoolExecutor(4) as pool:
                    results = list(pool.map(
                        lambda k: query(server, k), keys()[:2] * 2))
                for status, payload in results:
                    assert status == 200
                    assert payload["record"]["ticks"] > 0
                if baseline is None:
                    baseline = {p["key"]: p["record"]
                                for _, p in results}
                else:
                    for _, payload in results:
                        assert payload["record"] == baseline[payload["key"]]
        finally:
            stop.set()
            thread.join(30)
        # The hammer actually pruned entries while queries flowed.
        assert pruned["count"] >= 1


class TestSingleFlightUnit:
    def test_claim_wait_resolve(self):
        import asyncio

        async def scenario():
            flights = SingleFlight()
            flight, leader = flights.claim("k")
            assert leader and len(flights) == 1
            same, follower_leads = flights.claim("k")
            assert same is flight and not follower_leads
            assert flights.coalesced == 1

            waiter = asyncio.ensure_future(flights.wait(flight))
            await asyncio.sleep(0)
            flights.resolve("k", {"v": 1})
            assert await waiter == {"v": 1}
            assert "k" not in flights

            # A cancelled waiter must not kill the flight for others.
            flight2, _ = flights.claim("j")
            doomed = asyncio.ensure_future(flights.wait(flight2))
            survivor = asyncio.ensure_future(flights.wait(flight2))
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0)
            flights.resolve("j", {"v": 2})
            assert await survivor == {"v": 2}
            with pytest.raises(asyncio.CancelledError):
                await doomed

            flight3, _ = flights.claim("x")
            flights.fail("x", RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await flights.wait(flight3)

        asyncio.run(scenario())
