"""Unit tests for the coherent memory bus."""

import pytest

from repro.cache import Cache, CacheParams
from repro.interconnect.bus import MemBus
from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction


def make_bus(latency=ns(10)):
    sim = Simulator()
    bus = MemBus(sim, "membus", freq_hz=1e9, width=64, latency=latency)
    mem = FixedLatencyTarget(sim, "mem", latency=ns(50))
    bus.attach(AddrRange(0, 1 << 20), mem)
    return sim, bus, mem


class TestRouting:
    def test_routes_by_range(self):
        sim, bus, mem = make_bus()
        other = FixedLatencyTarget(sim, "mmio", latency=ns(1))
        bus.attach(AddrRange(1 << 20, 1 << 21), other)
        assert bus.route(0) is mem
        assert bus.route(1 << 20) is other
        assert bus.route(1 << 22) is None

    def test_overlapping_ranges_rejected(self):
        sim, bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.attach(AddrRange(0, 64), FixedLatencyTarget(sim, "x", 1))

    def test_unrouted_raises(self):
        sim, bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.send(Transaction.read(1 << 22, 64), lambda t: None)

    def test_end_to_end_latency(self):
        sim, bus, _ = make_bus(latency=ns(10))
        done = []
        bus.send(Transaction.read(0, 64), lambda t: done.append(sim.now))
        sim.run()
        # 1 bus cycle occupancy + 10ns bus latency + 50ns memory.
        assert done[0] == ns(1) + ns(10) + ns(50)

    def test_bandwidth_limits(self):
        sim, bus, _ = make_bus(latency=0)
        done = []
        for i in range(3):
            bus.send(Transaction.read(i * 4096, 4096), lambda t: done.append(sim.now))
        sim.run()
        # 4096/64 = 64 cycles per transaction on the bus.
        gaps = [b - a for a, b in zip(done, done[1:])]
        assert all(gap == ns(64) for gap in gaps)


class TestSnooping:
    def test_write_from_other_master_invalidates(self):
        sim, bus, mem = make_bus()
        cache = Cache(sim, "acc_cache", CacheParams(size=4096, assoc=4), mem)
        bus.add_snooper("accel", cache)
        # Warm the snooping cache.
        cache.send(Transaction.read(0, 128), lambda t: None)
        sim.run()
        assert cache.tags.resident_lines == 2
        # CPU write through the bus invalidates the accelerator's copy.
        bus.send(Transaction.write(0, 128, source="cpu"), lambda t: None)
        sim.run()
        assert cache.tags.resident_lines == 0
        assert bus.stats["snoop_invalidations"].value == 2

    def test_own_writes_do_not_self_invalidate(self):
        sim, bus, mem = make_bus()
        cache = Cache(sim, "acc_cache", CacheParams(size=4096, assoc=4), mem)
        bus.add_snooper("accel", cache)
        cache.send(Transaction.read(0, 64), lambda t: None)
        sim.run()
        bus.send(Transaction.write(0, 64, source="accel.dma"), lambda t: None)
        sim.run()
        assert cache.tags.resident_lines == 1

    def test_reads_do_not_invalidate(self):
        sim, bus, mem = make_bus()
        cache = Cache(sim, "acc_cache", CacheParams(size=4096, assoc=4), mem)
        bus.add_snooper("accel", cache)
        cache.send(Transaction.read(0, 64), lambda t: None)
        sim.run()
        bus.send(Transaction.read(0, 64, source="cpu"), lambda t: None)
        sim.run()
        assert cache.tags.resident_lines == 1


class TestValidation:
    def test_bad_width(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MemBus(sim, "b", width=0)
