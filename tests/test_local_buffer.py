"""Unit tests for the local scratchpad buffer."""

import pytest

from repro.accel.local_buffer import BufferFullError, LocalBuffer
from repro.sim.eventq import Simulator
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction


def make_buffer(capacity=1024):
    sim = Simulator()
    return sim, LocalBuffer(sim, "lbuf", capacity=capacity)


class TestAllocation:
    def test_alloc_free_cycle(self):
        _, buf = make_buffer(1024)
        buf.alloc("a", 512)
        assert buf.in_use == 512
        assert buf.free_bytes == 512
        buf.free("a")
        assert buf.in_use == 0

    def test_overflow_raises(self):
        _, buf = make_buffer(1024)
        buf.alloc("a", 1024)
        with pytest.raises(BufferFullError):
            buf.alloc("b", 1)

    def test_free_then_refill(self):
        _, buf = make_buffer(1024)
        buf.alloc("a", 600)
        buf.alloc("b", 400)
        buf.free("a")
        buf.alloc("c", 600)
        assert buf.in_use == 1000

    def test_duplicate_tag_rejected(self):
        _, buf = make_buffer()
        buf.alloc("a", 64)
        with pytest.raises(ValueError):
            buf.alloc("a", 64)

    def test_free_unknown_tag_is_noop(self):
        _, buf = make_buffer()
        buf.free("ghost")
        assert buf.in_use == 0

    def test_reset(self):
        _, buf = make_buffer()
        buf.alloc("a", 100)
        buf.alloc("b", 100)
        buf.reset()
        assert buf.in_use == 0
        assert not buf.holds("a")

    def test_high_water_stat(self):
        _, buf = make_buffer(1024)
        buf.alloc("a", 700)
        buf.free("a")
        buf.alloc("b", 300)
        assert buf.stats["high_water"].value == 700

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LocalBuffer(sim, "x", capacity=0)
        _, buf = make_buffer()
        with pytest.raises(ValueError):
            buf.alloc("a", 0)


class TestTiming:
    def test_sram_latency(self):
        sim, buf = make_buffer()
        done = []
        buf.send(Transaction.read(0, 64), lambda t: done.append(sim.now))
        sim.run()
        assert done[0] >= ns(2)
        assert done[0] < ns(10)

    def test_stats_count(self):
        sim, buf = make_buffer()
        buf.send(Transaction.read(0, 64), lambda t: None)
        buf.send(Transaction.write(0, 128), lambda t: None)
        sim.run()
        assert buf.stats["reads"].value == 1
        assert buf.stats["writes"].value == 1
        assert buf.stats["bytes"].value == 192
