"""Refresh and long-horizon behaviour of the DRAM controller."""

import dataclasses

from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController
from repro.memory.dram.devices import DDR4_2400
from repro.sim.eventq import Simulator
from repro.sim.transaction import Transaction
from repro.sim.ticks import ns


def run_spaced_accesses(timings, gap_ticks, count):
    """Issue line reads separated by idle gaps; return completion times."""
    sim = Simulator()
    ctrl = DRAMController(sim, "dram", timings, AddrRange(0, 1 << 24))
    done = []

    def issue(index):
        if index >= count:
            return
        txn = Transaction.read(index * 64, 64)
        ctrl.send(txn, lambda t: done.append(sim.now))
        sim.schedule(gap_ticks, lambda: issue(index + 1))

    issue(0)
    sim.run()
    return done


class TestRefresh:
    def test_refresh_stalls_recorded_over_long_run(self):
        """Accesses spanning many tREFI windows hit refresh blackouts."""
        timings = dataclasses.replace(
            DDR4_2400, name="DDR4-fastrefresh", t_refi=500.0, t_rfc=300.0
        )
        run_spaced_accesses(timings, gap_ticks=ns(400), count=50)
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", timings, AddrRange(0, 1 << 24))
        for i in range(200):
            ctrl.send(Transaction.read(i * 64, 64), lambda t: None)
        sim.run()
        assert ctrl.stats["refresh_stalls"].value > 0

    def test_refresh_overhead_bounded(self):
        """Refresh costs roughly tRFC/tREFI of bandwidth, not more."""
        normal = DDR4_2400
        no_refresh = dataclasses.replace(
            DDR4_2400, name="DDR4-norefresh", t_refi=10**9
        )

        def stream(timings):
            sim = Simulator()
            ctrl = DRAMController(sim, "d", timings, AddrRange(0, 1 << 24))
            for i in range(1024):
                ctrl.send(Transaction.read(i * 4096, 4096), lambda t: None)
            sim.run()
            return sim.now

        t_with = stream(normal)
        t_without = stream(no_refresh)
        assert t_with >= t_without
        # Overhead fraction bounded by ~2x the duty cycle.
        duty = normal.t_rfc / normal.t_refi
        assert (t_with - t_without) / t_without < 2 * duty + 0.02

    def test_idle_period_catch_up(self):
        """A long idle gap must not accumulate refresh debt."""
        done = run_spaced_accesses(DDR4_2400, gap_ticks=ns(100_000), count=5)
        # Each access after an idle gap completes promptly (well under
        # a refresh window) rather than serially paying missed refreshes.
        gaps = [b - a for a, b in zip(done, done[1:])]
        assert all(gap < ns(101_000) for gap in gaps)
