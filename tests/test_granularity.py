"""Cross-checks of the transaction-granularity timing model.

DESIGN.md's central modelling decision is that components exchange
multi-line transactions while charging per-line / per-TLP costs
arithmetically.  These tests verify the invariants that make the
reduction sound: results must be stable under the event-granularity knob
(the DMA segment size), and per-line statistics must be *exactly*
independent of it.
"""

import pytest

from repro import SystemConfig, run_gemm

SEGMENTS = (512, 1024, 2048, 4096, 8192)


class TestGranularityStability:
    def test_timing_stable_across_segment_sizes(self):
        """Execution time varies only mildly with event granularity.

        Segment size is also the read-request size, so some physical
        variation is expected (request/header overheads); the point is
        that halving or quartering the granularity does not change the
        answer materially.
        """
        ticks = {
            seg: run_gemm(
                SystemConfig.pcie_8gb(dma_segment_bytes=seg), 128, 128, 128
            ).ticks
            for seg in SEGMENTS
        }
        base = ticks[4096]
        for seg, value in ticks.items():
            assert value == pytest.approx(base, rel=0.25), (
                f"segment {seg}: {value} vs {base}"
            )

    def test_per_line_stats_exact_under_granularity(self):
        """TLB lookups count streamed lines exactly, per DESIGN.md."""
        expected = 128**3 // 128 + 128 * 128 * 4 // 64
        for seg in (1024, 4096):
            result = run_gemm(
                SystemConfig.pcie_8gb(dma_segment_bytes=seg), 128, 128, 128
            )
            assert result.table4["utlb_lookup_times"] == expected

    def test_traffic_independent_of_granularity(self):
        volumes = {
            seg: run_gemm(
                SystemConfig.pcie_8gb(dma_segment_bytes=seg), 64, 64, 64
            ).traffic_bytes
            for seg in (1024, 4096)
        }
        assert len(set(volumes.values())) == 1

    def test_ordering_preserved_across_granularity(self):
        """Config comparisons (who wins) hold at any granularity."""
        for seg in (1024, 4096):
            slow = run_gemm(
                SystemConfig.pcie_2gb(dma_segment_bytes=seg), 64, 64, 64
            ).ticks
            fast = run_gemm(
                SystemConfig.pcie_64gb(dma_segment_bytes=seg), 64, 64, 64
            ).ticks
            assert fast < slow
