"""Property-based invariants of the domain partition planner.

Skipped wholesale when ``hypothesis`` is unavailable; the deterministic
partition checks over the registered topo-* sweeps live in
``tests/test_pdes.py`` and always run.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.interconnect.pcie.link import PCIeConfig  # noqa: E402
from repro.topology.description import (  # noqa: E402
    balanced_tree,
    flat_topology,
    tiered_topology,
)
from repro.topology.fabric import plan_domains  # noqa: E402


def _topology(shape, endpoints, depth):
    if shape == "flat":
        return flat_topology(endpoints)
    if shape == "tiered":
        return tiered_topology(endpoints, depth=depth)
    return balanced_tree(endpoints, fanout=2)


@settings(max_examples=60, deadline=None)
@given(
    shape=st.sampled_from(["flat", "tiered", "tree"]),
    endpoints=st.integers(min_value=1, max_value=10),
    depth=st.integers(min_value=1, max_value=3),
    domains=st.integers(min_value=1, max_value=12),
    rc_latency=st.integers(min_value=1, max_value=200_000),
    switch_latency=st.integers(min_value=1, max_value=100_000),
)
def test_partition_covers_every_endpoint_exactly_once(
    shape, endpoints, depth, domains, rc_latency, switch_latency
):
    """Every endpoint lands in exactly one worker domain, worker
    domains are used contiguously, and the quantum never exceeds any
    hop latency (the lookahead rule at plan level)."""
    topology = _topology(shape, endpoints, depth)
    config = PCIeConfig(rc_latency=rc_latency, switch_latency=switch_latency)
    domains = min(domains, endpoints + 1)  # what effective_domains() does
    plan = plan_domains(topology, config, domains)

    assert plan.domains == domains
    # Exactly one domain per endpoint, in the worker range.
    assert len(plan.endpoint_domain) == topology.num_endpoints
    if domains == 1:
        assert set(plan.endpoint_domain) <= {0}
    else:
        assert all(1 <= d <= domains - 1 for d in plan.endpoint_domain)
        # Contiguous block assignment: non-decreasing and surjective
        # (no worker domain sits idle).
        assert list(plan.endpoint_domain) == sorted(plan.endpoint_domain)
        assert set(plan.endpoint_domain) == set(range(1, domains))

    # The quantum lower-bounds every cross-domain hop in the hierarchy.
    assert plan.quantum >= 1
    assert plan.quantum <= rc_latency
    if topology.num_switches:
        assert plan.quantum <= switch_latency


@settings(max_examples=40, deadline=None)
@given(
    endpoints=st.integers(min_value=1, max_value=8),
    domains=st.integers(min_value=2, max_value=9),
    bad_latency=st.integers(min_value=-5, max_value=0),
)
def test_lookahead_violations_always_refused(endpoints, domains, bad_latency):
    """Any hop below one tick of lookahead is refused, never silently
    clamped, whenever more than one domain is requested."""
    config = PCIeConfig(rc_latency=bad_latency)
    domains = min(domains, endpoints + 1)
    if domains == 1:
        return
    with pytest.raises(ValueError, match="lookahead"):
        plan_domains(flat_topology(endpoints), config, domains)
