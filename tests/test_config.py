"""Unit tests for SystemConfig and the paper's named presets."""

import pytest

from repro import AccessMode, SystemConfig
from repro.interconnect.pcie.link import PCIeConfig
from repro.memory.dram.devices import DDR3_1600, DDR4_2400, HBM2

GB = 10**9


class TestTable2Baseline:
    def test_defaults(self):
        config = SystemConfig.table2_baseline()
        assert config.cpu_freq_hz == 1e9
        assert config.l1d.size == 64 * 1024
        assert config.l1i_size == 32 * 1024
        assert config.llc.size == 2 * 1024 * 1024
        assert config.iocache.size == 32 * 1024
        assert config.host_mem is DDR3_1600
        assert config.host_mem_bytes == 4 << 30
        assert config.pcie.lanes == 4
        assert config.access_mode is AccessMode.DIRECT_CACHE

    def test_pcie_matches_table2(self):
        pcie = SystemConfig.table2_baseline().pcie
        # "Version 2.0, 4 Gb/s, 4 lanes": 4 Gb/s effective per lane.
        assert pcie.effective_bytes_per_sec == 2 * GB
        from repro.sim.ticks import ns

        assert pcie.rc_latency == ns(150)
        assert pcie.switch_latency == ns(50)


class TestPaperSystems:
    def test_pcie_2gb(self):
        config = SystemConfig.pcie_2gb()
        assert config.pcie.effective_bytes_per_sec == 2 * GB
        assert config.host_mem is DDR4_2400
        assert config.packet_size == 256

    def test_pcie_8gb(self):
        config = SystemConfig.pcie_8gb()
        assert config.pcie.raw_bytes_per_sec == 8 * GB
        assert config.host_mem is DDR4_2400

    def test_pcie_64gb(self):
        config = SystemConfig.pcie_64gb()
        assert config.pcie.raw_bytes_per_sec == 64 * GB
        assert config.host_mem is HBM2

    def test_devmem_system(self):
        config = SystemConfig.devmem_system()
        assert config.access_mode is AccessMode.DEVICE_MEMORY
        assert config.devmem is HBM2
        assert config.packet_size == 64
        assert config.uses_device_memory

    def test_paper_systems_registry(self):
        systems = SystemConfig.paper_systems()
        assert set(systems) == {"PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem"}
        for name, config in systems.items():
            assert config.name == name


class TestConfigDerivation:
    def test_with_override(self):
        base = SystemConfig.table2_baseline()
        derived = base.with_(packet_size=512)
        assert derived.packet_size == 512
        assert base.packet_size is None  # original untouched

    def test_with_pcie_bandwidth(self):
        base = SystemConfig.table2_baseline()
        derived = base.with_pcie_bandwidth(16, 32.0)
        assert derived.pcie.lanes == 16
        assert derived.pcie.lane_gbps == 32.0
        # Latencies preserved.
        assert derived.pcie.rc_latency == base.pcie.rc_latency

    def test_with_packet_size(self):
        base = SystemConfig.pcie_8gb()
        derived = base.with_packet_size(1024)
        assert derived.pcie.tlp.max_payload == 1024
        assert derived.packet_size == 1024
        assert derived.pcie.lanes == base.pcie.lanes

    def test_frozen(self):
        config = SystemConfig.table2_baseline()
        with pytest.raises(Exception):
            config.packet_size = 128


class TestAccessModeParsing:
    def test_parse_strings(self):
        assert AccessMode.parse("dc") is AccessMode.DIRECT_CACHE
        assert AccessMode.parse("DM") is AccessMode.DIRECT_MEMORY
        assert AccessMode.parse("devmem") is AccessMode.DEVICE_MEMORY

    def test_parse_passthrough(self):
        assert AccessMode.parse(AccessMode.DIRECT_CACHE) is AccessMode.DIRECT_CACHE

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            AccessMode.parse("warp-speed")


class TestHostBridge:
    def test_rejects_devmem_mode(self):
        from repro.core.access_modes import HostBridge
        from repro.sim.eventq import Simulator
        from repro.sim.ports import FixedLatencyTarget

        sim = Simulator()
        target = FixedLatencyTarget(sim, "t", 1)
        with pytest.raises(ValueError):
            HostBridge(sim, "hb", AccessMode.DEVICE_MEMORY, target, target)

    def test_dm_bypasses_cached_path(self):
        from repro.core.access_modes import HostBridge
        from repro.sim.eventq import Simulator
        from repro.sim.ports import FixedLatencyTarget
        from repro.sim.transaction import Transaction

        sim = Simulator()
        cached = FixedLatencyTarget(sim, "cached", 1)
        direct = FixedLatencyTarget(sim, "direct", 1)
        bridge = HostBridge(
            sim, "hb", AccessMode.DIRECT_MEMORY, cached, direct
        )
        bridge.send(Transaction.read(0, 64), lambda t: None)
        sim.run()
        assert direct.stats["transactions"].value == 1
        assert cached.stats["transactions"].value == 0

    def test_dc_uses_cached_path(self):
        from repro.core.access_modes import HostBridge
        from repro.sim.eventq import Simulator
        from repro.sim.ports import FixedLatencyTarget
        from repro.sim.transaction import Transaction

        sim = Simulator()
        cached = FixedLatencyTarget(sim, "cached", 1)
        direct = FixedLatencyTarget(sim, "direct", 1)
        bridge = HostBridge(sim, "hb", AccessMode.DIRECT_CACHE, cached, direct)
        bridge.send(Transaction.read(0, 64), lambda t: None)
        sim.run()
        assert cached.stats["transactions"].value == 1
