"""Tests for trace recording and replay."""

import pytest

from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController
from repro.memory.dram.devices import DDR3_1600, HBM2
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.trace import Trace, TraceRecord, TraceReplayer, TracingPort
from repro.sim.transaction import Transaction


def make_recorder():
    sim = Simulator()
    sink = FixedLatencyTarget(sim, "sink", latency=ns(50))
    port = TracingPort(sim, "mon", sink)
    return sim, port, sink


class TestRecording:
    def test_records_forwarded_requests(self):
        sim, port, sink = make_recorder()
        port.send(Transaction.read(0x100, 64, source="dma"), lambda t: None)
        port.send(Transaction.write(0x200, 128), lambda t: None)
        sim.run()
        assert len(port.trace) == 2
        assert sink.stats["transactions"].value == 2
        first = port.trace.records[0]
        assert (first.cmd, first.addr, first.size) == ("read", 0x100, 64)
        assert first.source == "dma"

    def test_trace_metadata(self):
        sim, port, _ = make_recorder()
        for i in range(4):
            sim.schedule(i * 100, lambda i=i: port.send(
                Transaction.read(i * 64, 64), lambda t: None
            ))
        sim.run()
        assert port.trace.total_bytes == 256
        assert port.trace.duration_ticks == 300

    def test_save_load_round_trip(self, tmp_path):
        sim, port, _ = make_recorder()
        port.send(Transaction.read(0xABC, 64, source="x"), lambda t: None)
        port.send(Transaction.write(0xDEF00, 256), lambda t: None)
        sim.run()
        path = tmp_path / "trace.jsonl"
        port.trace.save(str(path))
        loaded = Trace.load(str(path))
        assert len(loaded) == 2
        assert loaded.records[0].addr == 0xABC
        assert loaded.records[1].cmd == "write"

    def test_record_to_transaction(self):
        record = TraceRecord(tick=5, cmd="write", addr=64, size=128,
                             stream="B")
        txn = record.to_transaction()
        assert txn.is_write
        assert txn.stream == "B"


class TestReplay:
    def make_trace(self, n=16, gap=1000):
        return Trace([
            TraceRecord(tick=i * gap, cmd="read", addr=i * 4096, size=4096)
            for i in range(n)
        ])

    def test_asap_replay_completes(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=ns(100))
        replayer = TraceReplayer(sim, "rp", self.make_trace(), sink)
        done = []
        replayer.run(lambda t: done.append(t))
        sim.run()
        assert done
        assert replayer.stats["replayed"].value == 16

    def test_timed_replay_respects_gaps(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=ns(1))
        trace = self.make_trace(n=4, gap=ns(1000))
        replayer = TraceReplayer(sim, "rp", trace, sink, mode="timed")
        done = []
        replayer.run(lambda t: done.append(t))
        sim.run()
        # Last issue at 3 us + 1 ns latency.
        assert done[0] >= ns(3000)

    def test_asap_faster_than_timed_for_sparse_trace(self):
        def run(mode):
            sim = Simulator()
            sink = FixedLatencyTarget(sim, "sink", latency=ns(1))
            trace = self.make_trace(n=8, gap=ns(10_000))
            replayer = TraceReplayer(sim, "rp", trace, sink, mode=mode)
            done = []
            replayer.run(lambda t: done.append(t))
            sim.run()
            return done[0]

        assert run("asap") < run("timed")

    def test_empty_trace(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=1)
        replayer = TraceReplayer(sim, "rp", Trace(), sink)
        done = []
        replayer.run(lambda t: done.append(t))
        assert done == [0]

    def test_validation(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=1)
        with pytest.raises(ValueError):
            TraceReplayer(sim, "rp", Trace(), sink, mode="warp")
        with pytest.raises(ValueError):
            TraceReplayer(sim, "rp", Trace(), sink, window=0)


class TestReplayDisciplineGoldens:
    """Pin the exact finish ticks of the two replay disciplines.

    Open-loop (``timed``) must end at last-recorded-gap + sink latency;
    closed-loop (``asap``) must end after ceil(n / window) back-to-back
    waves.  Any drift in replay scheduling shows up as a changed tick.
    """

    def make_parts(self, mode, window=4):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=ns(100))
        trace = Trace([
            TraceRecord(tick=i * ns(250), cmd="read", addr=i * 4096,
                        size=4096)
            for i in range(12)
        ])
        replayer = TraceReplayer(sim, "rp", trace, sink, mode=mode,
                                 window=window)
        done = []
        replayer.run(lambda t: done.append(t))
        sim.run()
        return done[0], replayer

    def test_open_loop_golden(self):
        finish, replayer = self.make_parts("timed")
        # Last record issues at 11 * 250 ns, completes one latency later.
        assert finish == 11 * ns(250) + ns(100)
        assert replayer.stats["latency"].count == 12
        assert replayer.stats["latency"].mean == ns(100)

    def test_closed_loop_golden(self):
        finish, replayer = self.make_parts("asap")
        # 12 requests through a window of 4 against a pure-latency sink:
        # three full waves, each one sink latency long, zero gaps.
        assert finish == 3 * ns(100)
        assert replayer.stats["latency"].count == 12
        assert replayer.stats["latency"].mean == ns(100)

    def test_disciplines_diverge_only_in_schedule(self):
        timed_finish, timed_rp = self.make_parts("timed")
        asap_finish, asap_rp = self.make_parts("asap")
        assert asap_finish < timed_finish
        # Same traffic either way: identical per-request latency stats.
        assert (timed_rp.stats["latency"].count
                == asap_rp.stats["latency"].count)
        assert (timed_rp.stats["latency"].mean
                == asap_rp.stats["latency"].mean)


class TestNonAsciiRoundTrip:
    def test_record_json_round_trip_non_ascii(self, tmp_path):
        records = [
            TraceRecord(tick=0, cmd="read", addr=0x100, size=64,
                        source="dma-ünïté", stream="流れ-α"),
            TraceRecord(tick=100, cmd="write", addr=0x200, size=128,
                        source="moteur-β", stream="потік-1"),
        ]
        path = tmp_path / "trace-ünïcode.jsonl"
        Trace(records).save(str(path))
        loaded = Trace.load(str(path))
        assert loaded.records == records
        txn = loaded.records[0].to_transaction()
        assert txn.source == "dma-ünïté"
        assert txn.stream == "流れ-α"


class TestTraceDrivenMemoryStudy:
    def test_replay_against_different_memories(self):
        """The canonical use: capture once, compare memory systems."""
        # Capture a synthetic streaming trace.
        trace = Trace([
            TraceRecord(tick=i * 100, cmd="read", addr=i * 4096, size=4096)
            for i in range(256)
        ])

        def replay_against(timings):
            sim = Simulator()
            ctrl = DRAMController(sim, "mem", timings, AddrRange(0, 1 << 24))
            replayer = TraceReplayer(sim, "rp", trace, ctrl, window=16)
            done = []
            replayer.run(lambda t: done.append(t))
            sim.run()
            return done[0]

        t_ddr3 = replay_against(DDR3_1600)
        t_hbm = replay_against(HBM2)
        assert t_hbm < t_ddr3

    def test_capture_real_gemm_traffic(self):
        """Wrap the accelerator's DMA path of a live system and record."""
        from repro import SystemConfig
        from repro.core.system import AcceSysSystem
        from repro.workloads import GemmWorkload

        system = AcceSysSystem(SystemConfig.pcie_2gb())
        # Interpose on the accelerator's DMA target.
        original = system.wrapper.dma.target
        monitor = TracingPort(system.sim, "monitor", original)
        system.wrapper.dma.target = monitor

        workload = GemmWorkload(64, 64, 64)
        a = system.driver.pin_buffer("A", workload.a_bytes)
        b = system.driver.pin_buffer("B", workload.b_bytes)
        c = system.driver.pin_buffer("C", workload.c_bytes)
        done = []
        system.driver.launch_gemm(64, 64, 64, a, b, c,
                                  lambda j, s: done.append(True))
        system.run()
        assert done
        # All DMA traffic captured: reads (A+B panels) + writes (C tiles).
        reads = sum(r.size for r in monitor.trace if r.cmd == "read")
        writes = sum(r.size for r in monitor.trace if r.cmd == "write")
        assert reads == 64**3 // 2
        assert writes == 64 * 64 * 4
