"""Tests for the sweep engine (repro.sweep) and the PR's bugfixes.

Covers:

* parallel execution produces tick-identical results to serial,
* on-disk cache hit/miss accounting and replay fidelity,
* cache invalidation when any configuration field changes,
* SystemConfig.stable_hash / canonical serialization,
* regressions for run_until_idle, ViT op-tick accounting, and the
  dataclasses.replace-based config copies.
"""

import dataclasses
import os
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.core import runner as runner_mod
from repro.core.config import canonical_value
from repro.core.runner import run_vit
from repro.sim.eventq import Simulator
from repro.sweep import (
    NullCache,
    ResultCache,
    SweepPoint,
    SweepSpec,
    build_sweep,
    derive_seed,
    gemm_points,
    point_key,
    run_sweep,
)
from repro.workloads.vit import build_vit_graph

SIZE = 32


def small_spec(packets=(64, 128, 256, 512), name="test-sweep") -> SweepSpec:
    base = SystemConfig.table2_baseline()
    configs = {packet: base.with_packet_size(packet) for packet in packets}
    return SweepSpec(name=name, points=gemm_points(configs, SIZE))


def ticks_of(report) -> dict:
    return {key: result.ticks for key, result in report.results().items()}


class TestParallelEqualsSerial:
    def test_tick_identical_four_way(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec, workers=1,
                           cache_dir=tmp_path / "serial")
        parallel = run_sweep(spec, workers=4,
                             cache_dir=tmp_path / "parallel")
        assert ticks_of(serial) == ticks_of(parallel)
        # Full records match too, not just the headline tick count.
        serial_records = {o.key: o.record for o in serial.outcomes}
        parallel_records = {o.key: o.record for o in parallel.outcomes}
        assert serial_records == parallel_records

    def test_point_order_preserved(self, tmp_path):
        spec = small_spec()
        report = run_sweep(spec, workers=4, cache=False)
        assert [o.key for o in report.outcomes] == [
            p.key for p in spec.points
        ]

    def test_pool_failure_falls_back_to_serial(self, tmp_path, monkeypatch):
        import repro.sweep.engine as engine

        def broken_pool(jobs, workers):
            return None  # what _run_parallel reports after an exception

        monkeypatch.setattr(engine, "_run_parallel", broken_pool)
        report = run_sweep(small_spec(), workers=4, cache=False)
        assert not report.parallel
        assert len(report.outcomes) == 4


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert (first.hits, first.misses) == (0, 4)
        second = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert (second.hits, second.misses) == (4, 0)
        assert second.fully_cached
        assert ticks_of(first) == ticks_of(second)

    def test_cached_results_match_live_records(self, tmp_path):
        spec = small_spec()
        live = run_sweep(spec, workers=1, cache_dir=tmp_path)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        for fresh, cached in zip(live.outcomes, replay.outcomes):
            assert fresh.record == cached.record
            assert fresh.result.seconds == cached.result.seconds
            assert fresh.result.traffic_bytes == cached.result.traffic_bytes

    def test_config_change_invalidates(self, tmp_path):
        spec = small_spec(packets=(64, 128))
        run_sweep(spec, workers=1, cache_dir=tmp_path)
        # Same packets, but a different PCIe link: every point must miss.
        base = SystemConfig.table2_baseline().with_pcie_bandwidth(8, 8.0)
        changed = SweepSpec(
            name="test-sweep",
            points=gemm_points(
                {p: base.with_packet_size(p) for p in (64, 128)}, SIZE
            ),
        )
        report = run_sweep(changed, workers=1, cache_dir=tmp_path)
        assert report.misses == 2 and report.hits == 0

    def test_param_change_invalidates(self):
        base = SystemConfig.table2_baseline()
        point_a = SweepPoint(key=1, config=base,
                             params={"m": 32, "k": 32, "n": 32})
        point_b = SweepPoint(key=1, config=base,
                             params={"m": 64, "k": 32, "n": 32})
        assert point_key(point_a, "gemm") != point_key(point_b, "gemm")

    def test_key_excludes_label(self):
        base = SystemConfig.table2_baseline()
        params = {"m": 32, "k": 32, "n": 32}
        point_a = SweepPoint(key="left", config=base, params=params)
        point_b = SweepPoint(key="right", config=base, params=params)
        assert point_key(point_a, "gemm") == point_key(point_b, "gemm")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = small_spec(packets=(64,))
        report = run_sweep(spec, workers=1, cache_dir=tmp_path)
        path = tmp_path / f"{report.outcomes[0].key_hash}.json"
        path.write_text("{not json")
        again = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert again.misses == 1
        assert ticks_of(report) == ticks_of(again)

    def test_no_cache_flag(self, tmp_path):
        spec = small_spec(packets=(64,))
        run_sweep(spec, workers=1, cache=False, cache_dir=tmp_path)
        assert len(ResultCache(tmp_path)) == 0

    def test_null_cache_interface(self):
        cache = NullCache()
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"ticks": 1})
        assert len(cache) == 0

    def test_clear(self, tmp_path):
        spec = small_spec(packets=(64, 128))
        run_sweep(spec, workers=1, cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_summarize_groups_by_sweep(self, tmp_path):
        run_sweep(small_spec(packets=(64, 128), name="sweep-a"),
                  workers=1, cache_dir=tmp_path)
        run_sweep(small_spec(packets=(256,), name="sweep-b"),
                  workers=1, cache_dir=tmp_path)
        summary = ResultCache(tmp_path).summarize()
        assert summary["entries"] == 3
        assert summary["bytes"] > 0
        assert summary["sweeps"] == {"sweep-a": 2, "sweep-b": 1}

    def test_summarize_empty_cache(self, tmp_path):
        summary = ResultCache(tmp_path / "nowhere").summarize()
        assert summary["entries"] == 0
        assert summary["sweeps"] == {}

    def test_prune_removes_only_named_sweep(self, tmp_path):
        spec_a = small_spec(packets=(64, 128), name="sweep-a")
        spec_b = small_spec(packets=(256,), name="sweep-b")
        run_sweep(spec_a, workers=1, cache_dir=tmp_path)
        run_sweep(spec_b, workers=1, cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        assert cache.prune("sweep-a") == 2
        assert len(cache) == 1
        # sweep-b untouched: replays from cache.
        assert run_sweep(spec_b, workers=1,
                         cache_dir=tmp_path).fully_cached
        # sweep-a re-simulates.
        assert run_sweep(spec_a, workers=1,
                         cache_dir=tmp_path).misses == 2

    def test_summarize_skips_corrupt_entries(self, tmp_path):
        run_sweep(small_spec(packets=(64,)), workers=1, cache_dir=tmp_path)
        (tmp_path / "deadbeef.json").write_text("{not json")
        summary = ResultCache(tmp_path).summarize()
        assert summary["entries"] == 1

    def test_counters_exact_under_concurrent_gets(self, tmp_path):
        """Hit/miss counters must not lose increments across threads.

        Regression: ``hits += 1`` / ``misses += 1`` are read-modify-
        write and used to race when one ResultCache instance served
        concurrent readers (exactly what the result server does), so
        totals drifted low under load.  The counters are now
        lock-protected; this hammers ``get`` from many threads and
        demands *exact* totals.
        """
        import threading

        cache = ResultCache(tmp_path)
        cache.put("feed" * 16, {"ticks": 1})
        threads, rounds = 16, 200
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for i in range(rounds):
                assert cache.get("feed" * 16) is not None
                assert cache.get(f"miss{i:060d}") is None

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert cache.hits == threads * rounds
        assert cache.misses == threads * rounds


class TestSpec:
    def test_duplicate_keys_rejected(self):
        base = SystemConfig.table2_baseline()
        points = [
            SweepPoint(key=1, config=base, params={}),
            SweepPoint(key=1, config=base, params={}),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(name="dup", points=points)

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            SweepSpec(name="bad", points=[], runner="no-such-runner")

    def test_registry_builds_cli_sweeps(self):
        spec = build_sweep("packet-size", size=16, packets=(64, 128))
        assert len(spec) == 2
        with pytest.raises(ValueError, match="unknown sweep"):
            build_sweep("no-such-sweep")

    def test_derive_seed_deterministic_and_distinct(self):
        base = SystemConfig.table2_baseline()
        point_a = SweepPoint(key="a", config=base, params={})
        point_b = SweepPoint(key="b", config=base, params={})
        assert derive_seed(1, point_a) == derive_seed(1, point_a)
        assert derive_seed(1, point_a) != derive_seed(1, point_b)
        assert derive_seed(1, point_a) != derive_seed(2, point_a)


class TestStableHash:
    def test_equal_configs_equal_hash(self):
        assert (SystemConfig.pcie_8gb().stable_hash()
                == SystemConfig.pcie_8gb().stable_hash())

    def test_any_field_changes_hash(self):
        base = SystemConfig.table2_baseline()
        variants = [
            base.with_packet_size(512),
            base.with_pcie_bandwidth(8, 8.0),
            base.with_(dma_channels=8),
            base.with_(smmu=None),
            SystemConfig.devmem_system(),
        ]
        hashes = {base.stable_hash()} | {v.stable_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_canonical_is_json_safe(self):
        import json

        for config in SystemConfig.paper_systems().values():
            json.dumps(config.to_canonical())

    def test_canonical_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestRunUntilIdleRegression:
    def test_raises_on_time_travel(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        # Bypass the schedule() guard, as a buggy component could.
        sim.queue.push(5, lambda: None)
        with pytest.raises(RuntimeError, match="time already at"):
            sim.run_until_idle(lambda: False)

    def test_raises_on_exhausted_budget(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(1, reschedule)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run_until_idle(lambda: False, max_events=10)

    def test_budget_ok_when_quiesced_at_limit(self):
        sim = Simulator()
        seen = []
        for t in (1, 2):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run_until_idle(lambda: len(seen) == 2, max_events=2)
        assert seen == [1, 2]


class TestAccountRegression:
    def test_duplicate_op_names_accumulate(self, monkeypatch):
        real_build = build_vit_graph

        def collapse_names(config):
            graph = real_build(config)
            graph.ops = [
                dataclasses.replace(op, name="op") for op in graph.ops
            ]
            return graph

        monkeypatch.setattr(runner_mod, "build_vit_graph", collapse_names)
        result = run_vit(SystemConfig.pcie_8gb(), "base", dim_scale=0.0625)
        # Every op shares one name; the single bucket must hold the total.
        assert set(result.op_ticks) == {"op"}
        assert result.op_ticks["op"] == (
            result.gemm_ticks + result.nongemm_ticks
        )

    def test_op_ticks_sum_to_totals(self):
        result = run_vit(SystemConfig.pcie_8gb(), "base", dim_scale=0.0625)
        assert sum(result.op_ticks.values()) == (
            result.gemm_ticks + result.nongemm_ticks
        )


class TestConfigCopyRegression:
    def test_with_pcie_bandwidth_preserves_other_fields(self):
        base = SystemConfig.table2_baseline().with_(
            pcie=dataclasses.replace(
                SystemConfig.table2_baseline().pcie,
                rc_latency=12345,
                hop_buffer_bytes=2048,
                max_tags=7,
            )
        )
        swept = base.with_pcie_bandwidth(16, 32.0, encoding=(242, 256))
        # Undoing exactly the fields the sweep sets must give back the
        # original, so no PCIeConfig field can silently drift.
        assert dataclasses.replace(
            swept.pcie,
            lanes=base.pcie.lanes,
            lane_gbps=base.pcie.lane_gbps,
            encoding=base.pcie.encoding,
        ) == base.pcie

    def test_with_packet_size_preserves_other_fields(self):
        base = SystemConfig.pcie_8gb().with_(
            pcie=dataclasses.replace(
                SystemConfig.pcie_8gb().pcie,
                switch_latency=999,
                rc_tlp_occupancy=17,
            )
        )
        swept = base.with_packet_size(1024)
        assert swept.packet_size == 1024
        assert swept.pcie.tlp.max_payload == 1024
        assert swept.pcie.tlp.header_bytes == base.pcie.tlp.header_bytes
        assert dataclasses.replace(
            swept.pcie, tlp=base.pcie.tlp
        ) == base.pcie


class TestBrokenCacheLocation:
    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path, capsys):
        not_a_dir = tmp_path / "cachefile"
        not_a_dir.write_text("occupied")
        spec = small_spec(packets=(64,))
        report = run_sweep(spec, workers=1, cache_dir=not_a_dir)
        assert report.misses == 1
        assert report.outcomes[0].result.ticks > 0
        assert "cannot write result cache" in capsys.readouterr().err


def _dict_runner(config, **params):
    """A bare module-level runner returning a JSON-safe record."""
    return {"name": config.name, "m": params.get("m", 0)}


def _rich_runner(config, **params):
    """A bare runner returning a non-dict (violates the codec contract)."""
    return object()


def _failing_runner(config, **params):
    raise ValueError("boom at this point")


class TestBareCallableRunners:
    def test_dict_returning_callable_works(self, tmp_path):
        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base, params={"m": i})
                  for i in (1, 2)]
        spec = SweepSpec("bare", points, runner=_dict_runner)
        report = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert report.results()[2] == {"name": base.name, "m": 2}
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached
        assert replay.results() == report.results()

    def test_non_dict_result_raises_clear_error(self):
        base = SystemConfig.table2_baseline()
        spec = SweepSpec(
            "rich", [SweepPoint(key=1, config=base)], runner=_rich_runner
        )
        with pytest.raises(RuntimeError, match="JSON-safe dict"):
            run_sweep(spec, workers=1, cache=False)

    def test_worker_failure_propagates_without_serial_rerun(self, capsys):
        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base) for i in range(3)]
        spec = SweepSpec("fail", points, runner=_failing_runner)
        with pytest.raises(RuntimeError, match="boom at this point"):
            run_sweep(spec, workers=2, cache=False)
        # A runner bug must not masquerade as a pool failure.
        assert "falling back to serial" not in capsys.readouterr().err


def _versioned_runner_v1(config, **params):
    return {"version": 1}


def _versioned_runner_v2(config, **params):
    return {"version": 2}


class TestExternalRunnerCacheKeys:
    def test_distinct_external_callables_never_alias(self):
        base = SystemConfig.table2_baseline()
        point = SweepPoint(key=1, config=base, params={"m": 8})
        # Same __name__, different logic: keys must differ.
        v2 = _versioned_runner_v2
        v2.__name__ = _versioned_runner_v1.__name__
        assert (point_key(point, _versioned_runner_v1)
                != point_key(point, v2))

    def test_builtin_runner_key_stable(self):
        base = SystemConfig.table2_baseline()
        point = SweepPoint(key=1, config=base, params={"m": 8})
        assert point_key(point, "gemm") == point_key(point, "gemm")


class TestWrongShapeCacheEntry:
    def test_valid_json_wrong_shape_is_a_miss(self, tmp_path):
        spec = small_spec(packets=(64,))
        report = run_sweep(spec, workers=1, cache_dir=tmp_path)
        path = tmp_path / f"{report.outcomes[0].key_hash}.json"
        for payload in ("null", "[]", "{}"):
            path.write_text(payload)
            again = run_sweep(spec, workers=1, cache_dir=tmp_path)
            assert again.misses == 1, payload
            assert ticks_of(again) == ticks_of(report)


def _runner_fails_on_two(config, **params):
    if params["m"] == 2:
        raise ValueError("point two is broken")
    return {"m": params["m"]}


class TestSiblingResultsSurviveFailure:
    def test_parallel_failure_caches_successful_siblings(self, tmp_path):
        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base, params={"m": i})
                  for i in (1, 2, 3)]
        spec = SweepSpec("partial", points, runner=_runner_fails_on_two)
        with pytest.raises(RuntimeError, match="point two is broken"):
            run_sweep(spec, workers=2, cache_dir=tmp_path)
        # The good siblings were cached: re-running only them is free.
        good = SweepSpec(
            "partial", [points[0], points[2]], runner=_runner_fails_on_two
        )
        replay = run_sweep(good, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached

    def test_serial_failure_caches_earlier_points(self, tmp_path):
        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base, params={"m": i})
                  for i in (1, 2)]
        spec = SweepSpec("partial-serial", points,
                         runner=_runner_fails_on_two)
        with pytest.raises(RuntimeError, match="point two is broken"):
            run_sweep(spec, workers=1, cache_dir=tmp_path)
        first_only = SweepSpec(
            "partial-serial", [points[0]], runner=_runner_fails_on_two
        )
        assert run_sweep(first_only, workers=1,
                         cache_dir=tmp_path).fully_cached


def _lambda_runner(config, **params):
    pick = lambda values: sorted(values)[0]  # noqa: E731 - nested code const
    return {"first": pick([params["m"], 99])}


class TestFingerprintStability:
    def test_lambda_runner_fingerprint_stable_across_processes(self, tmp_path):
        import subprocess
        import sys

        prog = (
            "from repro import SystemConfig\n"
            "from repro.sweep import SweepPoint, point_key\n"
            "import test_sweep\n"
            "p = SweepPoint(key=1, config=SystemConfig.table2_baseline(),\n"
            "               params={'m': 8})\n"
            "print(point_key(p, test_sweep._lambda_runner))\n"
        )
        keys = set()
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True, text=True, check=True,
                cwd=str(Path(__file__).parent),
                env={**os.environ,
                     "PYTHONPATH": str(Path(__file__).parents[1] / "src"),
                     "PYTHONHASHSEED": "random"},
            )
            keys.add(out.stdout.strip())
        assert len(keys) == 1, keys


def _numpy_record_runner(config, **params):
    import numpy as np

    return {"ticks": np.int64(5)}


class TestJsonUnsafeRecord:
    def test_unserializable_record_keeps_results(self, tmp_path, capsys):
        base = SystemConfig.table2_baseline()
        spec = SweepSpec(
            "np", [SweepPoint(key=1, config=base)],
            runner=_numpy_record_runner,
        )
        report = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert report.outcomes[0].record["ticks"] == 5
        assert "cannot write result cache" in capsys.readouterr().err


class TestWorkersEnv:
    def test_invalid_env_warns_and_runs_serial(self, monkeypatch, capsys):
        from repro.sweep import WORKERS_ENV, resolve_workers

        monkeypatch.setenv(WORKERS_ENV, "8x")
        assert resolve_workers(None) == 1
        assert "invalid" in capsys.readouterr().err

    def test_valid_env_and_unset(self, monkeypatch, capsys):
        from repro.sweep import WORKERS_ENV, resolve_workers

        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(None) == 6
        monkeypatch.delenv(WORKERS_ENV)
        assert resolve_workers(None) == 1
        assert capsys.readouterr().err == ""
