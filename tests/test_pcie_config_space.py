"""Unit tests for PCIe configuration space and enumeration."""

import pytest

from repro.interconnect.pcie.config_space import (
    BAR,
    CMD_BUS_MASTER_ENABLE,
    CMD_MEMORY_ENABLE,
    REG_BAR0,
    REG_COMMAND,
    REG_DEVICE_ID,
    REG_VENDOR_ID,
    ConfigSpace,
    PCIeFunction,
)
from repro.memory.addr_range import AddrRange


def make_space(window_size=1 << 28):
    return ConfigSpace(AddrRange(0x4000_0000, 0x4000_0000 + window_size))


class TestBAR:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            BAR(size=3000)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            BAR(size=64)

    def test_range_requires_assignment(self):
        bar = BAR(size=4096)
        with pytest.raises(RuntimeError):
            _ = bar.range
        bar.assigned_base = 0x1000
        assert bar.range == AddrRange(0x1000, 0x2000)


class TestPCIeFunction:
    def test_id_validation(self):
        with pytest.raises(ValueError):
            PCIeFunction(vendor_id=0x1_0000, device_id=0)
        with pytest.raises(ValueError):
            PCIeFunction(vendor_id=0, device_id=-1)

    def test_too_many_bars(self):
        with pytest.raises(ValueError):
            PCIeFunction(0x1234, 0x1, bars=[BAR(4096)] * 7)

    def test_config_reads(self):
        fn = PCIeFunction(0xABCD, 0x5678, bars=[BAR(4096)])
        assert fn.config_read(REG_VENDOR_ID) == 0xABCD
        assert fn.config_read(REG_DEVICE_ID) == 0x5678
        assert fn.config_read(REG_BAR0) == 0

    def test_command_write(self):
        fn = PCIeFunction(0x1, 0x2)
        fn.config_write(REG_COMMAND, CMD_MEMORY_ENABLE)
        assert fn.memory_enabled
        assert not fn.bus_master_enabled


class TestEnumeration:
    def test_assigns_aligned_bars(self):
        space = make_space()
        fn = PCIeFunction(0x1AB4, 0x0001, bars=[BAR(4096), BAR(1 << 20)])
        space.register(fn)
        space.enumerate()
        bar0, bar1 = fn.bars
        assert bar0.assigned_base % 4096 == 0
        assert bar1.assigned_base % (1 << 20) == 0
        assert not bar0.range.overlaps(bar1.range)

    def test_enables_device(self):
        space = make_space()
        fn = PCIeFunction(0x1AB4, 0x0001, bars=[BAR(4096)])
        space.register(fn)
        space.enumerate()
        assert fn.memory_enabled and fn.bus_master_enabled

    def test_find_by_ids(self):
        space = make_space()
        slot_a = space.register(PCIeFunction(0x1AB4, 0x0001))
        slot_b = space.register(PCIeFunction(0x1AB4, 0x0002))
        assert space.find(0x1AB4, 0x0002) == slot_b
        assert space.find(0x1AB4, 0x0001) == slot_a
        assert space.find(0xDEAD, 0xBEEF) is None

    def test_window_exhaustion(self):
        space = make_space(window_size=8192)
        space.register(PCIeFunction(0x1, 0x2, bars=[BAR(1 << 20)]))
        with pytest.raises(RuntimeError):
            space.enumerate()

    def test_multiple_functions_disjoint(self):
        space = make_space()
        fns = [PCIeFunction(0x1, i, bars=[BAR(65536)]) for i in range(4)]
        for fn in fns:
            space.register(fn)
        space.enumerate()
        ranges = [fn.bars[0].range for fn in fns]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1:]:
                assert not a.overlaps(b)
