"""Unit and property tests for the TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smmu.tlb import TLB


class TestBasics:
    def test_miss_then_hit(self):
        tlb = TLB("t", entries=8)
        assert tlb.lookup(5) is None
        tlb.insert(5, 99)
        assert tlb.lookup(5) == 99
        assert tlb.lookups == 2
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_batched_lookup_counting(self):
        tlb = TLB("t", entries=8)
        tlb.insert(1, 10)
        tlb.lookup(1, count=63)
        assert tlb.lookups == 63
        assert tlb.hits == 63

    def test_lru_eviction_fully_assoc(self):
        tlb = TLB("t", entries=2)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.lookup(1)            # 1 most recent
        evicted = tlb.insert(3, 30)
        assert evicted == 2
        assert tlb.probe(1) and tlb.probe(3)
        assert not tlb.probe(2)

    def test_set_associative_mapping(self):
        tlb = TLB("t", entries=8, assoc=2)  # 4 sets
        # vpns 0, 4, 8 all map to set 0; assoc 2 -> third insert evicts.
        tlb.insert(0, 1)
        tlb.insert(4, 2)
        evicted = tlb.insert(8, 3)
        assert evicted == 0
        assert tlb.occupancy == 2

    def test_reinsert_updates(self):
        tlb = TLB("t", entries=4)
        tlb.insert(1, 10)
        assert tlb.insert(1, 11) is None
        assert tlb.lookup(1) == 11

    def test_invalidate(self):
        tlb = TLB("t", entries=4)
        tlb.insert(1, 10)
        assert tlb.invalidate(1)
        assert not tlb.invalidate(1)
        assert tlb.lookup(1) is None

    def test_invalidate_all(self):
        tlb = TLB("t", entries=4)
        for i in range(4):
            tlb.insert(i, i)
        tlb.invalidate_all()
        assert tlb.occupancy == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TLB("t", entries=0)
        with pytest.raises(ValueError):
            TLB("t", entries=10, assoc=4)

    def test_assoc_capped_to_fully(self):
        tlb = TLB("t", entries=4, assoc=100)
        assert tlb.assoc == 4
        assert tlb.num_sets == 1

    def test_stat_dict(self):
        tlb = TLB("mytlb", entries=4)
        tlb.insert(0, 0)
        tlb.lookup(0)
        stats = tlb.stat_dict()
        assert stats["mytlb.hit_rate"] == 1.0


class TestProperties:
    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=100
        ),
        entries=st.sampled_from([2, 4, 8, 16]),
    )
    def test_occupancy_bounded(self, ops, entries):
        tlb = TLB("t", entries=entries)
        for vpn in ops:
            if tlb.lookup(vpn) is None:
                tlb.insert(vpn, vpn + 1000)
        assert tlb.occupancy <= entries

    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=100
        )
    )
    def test_hits_plus_misses_equals_lookups(self, ops):
        tlb = TLB("t", entries=8, assoc=2)
        for vpn in ops:
            if tlb.lookup(vpn) is None:
                tlb.insert(vpn, vpn)
        assert tlb.hits + tlb.misses == tlb.lookups

    @settings(max_examples=30)
    @given(
        working_set=st.integers(min_value=1, max_value=8),
        passes=st.integers(min_value=2, max_value=5),
    )
    def test_working_set_within_capacity_always_hits_after_warmup(
        self, working_set, passes
    ):
        tlb = TLB("t", entries=8)
        for vpn in range(working_set):
            tlb.insert(vpn, vpn)
        for _ in range(passes):
            for vpn in range(working_set):
                assert tlb.lookup(vpn) == vpn
