"""Property-based invariants of the interconnect models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.bus import MemBus
from repro.interconnect.pcie import PCIeChannel, PCIeConfig
from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction


class TestChannelProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=8192), min_size=1, max_size=20
        )
    )
    def test_completions_preserve_issue_order(self, sizes):
        """A channel is a FIFO: no transaction overtakes another."""
        sim = Simulator()
        channel = PCIeChannel(sim, "ch", PCIeConfig())
        order = []
        for index, size in enumerate(sizes):
            channel.deliver(
                Transaction.read(index * 16384, size), size,
                lambda t, i=index: order.append(i),
            )
        sim.run()
        assert order == sorted(order)

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=8192), min_size=1, max_size=20
        )
    )
    def test_payload_accounting_conserved(self, sizes):
        sim = Simulator()
        channel = PCIeChannel(sim, "ch", PCIeConfig())
        for index, size in enumerate(sizes):
            channel.deliver(Transaction.read(index * 16384, size), size,
                            lambda t: None)
        sim.run()
        assert channel.stats["payload_bytes"].value == sum(sizes)
        # Wire bytes strictly exceed payload (headers).
        assert channel.stats["wire_bytes"].value > sum(sizes)

    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(min_value=1, max_value=65536))
    def test_single_transfer_latency_lower_bound(self, size):
        """No transfer beats pure serialization plus hop latencies."""
        sim = Simulator()
        config = PCIeConfig()
        channel = PCIeChannel(sim, "ch", config)
        done = []
        channel.deliver(Transaction.read(0, size), size,
                        lambda t: done.append(sim.now))
        sim.run()
        from repro.sim.ticks import serialization_ticks

        floor = serialization_ticks(
            size, config.effective_bytes_per_sec
        ) + config.rc_latency + config.switch_latency
        assert done[0] >= floor


class TestMemBusProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 20) - 8192),
                st.integers(min_value=1, max_value=8192),
                st.booleans(),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_bytes_conserved_and_all_complete(self, ops):
        sim = Simulator()
        bus = MemBus(sim, "bus")
        sink = FixedLatencyTarget(sim, "mem", latency=ns(10))
        bus.attach(AddrRange(0, 1 << 20), sink)
        completed = []
        total = 0
        for addr, size, is_write in ops:
            txn = (
                Transaction.write(addr, size)
                if is_write
                else Transaction.read(addr, size)
            )
            total += size
            bus.send(txn, lambda t: completed.append(t.id))
        sim.run()
        assert len(completed) == len(ops)
        assert len(set(completed)) == len(ops)  # each completes once
        assert bus.stats["bytes"].value == total

    @settings(max_examples=15, deadline=None)
    @given(
        widths=st.sampled_from([16, 32, 64, 128]),
        n=st.integers(min_value=2, max_value=12),
    )
    def test_wider_bus_never_slower(self, widths, n):
        def run(width):
            sim = Simulator()
            bus = MemBus(sim, "bus", width=width)
            sink = FixedLatencyTarget(sim, "mem", latency=ns(10))
            bus.attach(AddrRange(0, 1 << 20), sink)
            for i in range(n):
                bus.send(Transaction.read(i * 4096, 4096), lambda t: None)
            sim.run()
            return sim.now

        assert run(widths * 2) <= run(widths)
