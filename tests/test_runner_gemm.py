"""Unit tests for the GEMM runner surface (result types, options)."""

import numpy as np
import pytest

from repro import AccessMode, SystemConfig, run_gemm
from repro.core.runner import GemmResult


class TestGemmResult:
    def test_seconds_property(self):
        result = GemmResult("x", 1, 1, 1, ticks=10**12, job_ticks=10**12,
                            traffic_bytes=100)
        assert result.seconds == 1.0

    def test_delivered_bandwidth(self):
        result = GemmResult("x", 1, 1, 1, ticks=10**12, job_ticks=10**12,
                            traffic_bytes=2 * 10**9)
        assert result.delivered_bytes_per_sec == pytest.approx(2e9)

    def test_delivered_zero_guard(self):
        result = GemmResult("x", 1, 1, 1, ticks=0, job_ticks=0,
                            traffic_bytes=100)
        assert result.delivered_bytes_per_sec == 0.0


class TestRunGemmOptions:
    def test_packet_size_argument_overrides_config(self):
        config = SystemConfig.pcie_8gb()  # packet 256 default
        r_default = run_gemm(config, 64, 64, 64)
        r_override = run_gemm(config, 64, 64, 64, packet_size=64)
        # Different packetization -> different timing.
        assert r_default.ticks != r_override.ticks

    def test_functional_flag_enables_backing(self):
        result = run_gemm(SystemConfig.pcie_2gb(), 32, 32, 32,
                          functional=True)
        assert result.c_matrix is not None
        result2 = run_gemm(SystemConfig.pcie_2gb(), 32, 32, 32)
        assert result2.c_matrix is None

    def test_seed_changes_data_not_timing(self):
        a = run_gemm(SystemConfig.pcie_2gb(), 32, 32, 32,
                     functional=True, seed=1)
        b = run_gemm(SystemConfig.pcie_2gb(), 32, 32, 32,
                     functional=True, seed=2)
        assert a.ticks == b.ticks  # timing is data-independent
        assert not np.array_equal(a.c_matrix, b.c_matrix)

    def test_non_square_gemm(self):
        result = run_gemm(SystemConfig.pcie_2gb(), 48, 128, 80,
                          functional=True, seed=3)
        from repro.workloads import GemmWorkload

        workload = GemmWorkload(48, 128, 80, seed=3)
        a, b = workload.generate()
        np.testing.assert_array_equal(result.c_matrix,
                                      workload.reference(a, b))

    def test_component_stats_populated(self):
        result = run_gemm(SystemConfig.pcie_2gb(), 64, 64, 64)
        assert any("sa" in key for key in result.component_stats)
        assert any("dma" in key for key in result.component_stats)

    def test_dm_mode_has_table4(self):
        config = SystemConfig.table2_baseline(
            access_mode=AccessMode.DIRECT_MEMORY
        )
        result = run_gemm(config, 64, 64, 64)
        assert result.table4 is not None

    def test_no_smmu_no_table4(self):
        result = run_gemm(SystemConfig.table2_baseline(smmu=None),
                          64, 64, 64)
        assert result.table4 is None
