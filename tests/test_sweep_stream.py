"""Streaming and batched sweep execution (iter_sweep / run_sweeps).

The engine yields points as they finish (``imap_unordered`` under the
hood); these tests pin the contract:

* ``iter_sweep`` yields every outcome exactly once -- cached points
  first in point order, simulated points in completion order -- and the
  stream's results match a barriered ``run_sweep`` bit-for-bit;
* ``run_sweeps`` runs several specs against one pool invocation and
  returns per-spec reports identical to separate ``run_sweep`` calls;
* the ``progress`` callback counts points across the whole batch.
"""

import pytest

from repro import SystemConfig
from repro.sweep import (
    SweepPoint,
    SweepSpec,
    gemm_points,
    iter_sweep,
    run_sweep,
    run_sweeps,
)

SIZE = 32


def small_spec(packets=(64, 128, 256), name="stream-sweep") -> SweepSpec:
    base = SystemConfig.table2_baseline()
    configs = {packet: base.with_packet_size(packet) for packet in packets}
    return SweepSpec(name=name, points=gemm_points(configs, SIZE))


class TestIterSweep:
    def test_yields_every_point_once(self, tmp_path):
        spec = small_spec()
        outcomes = list(iter_sweep(spec, workers=1, cache_dir=tmp_path))
        assert sorted(o.key for o in outcomes) == sorted(
            p.key for p in spec.points
        )
        assert all(not o.cached for o in outcomes)

    def test_stream_matches_run_sweep(self, tmp_path):
        spec = small_spec()
        streamed = {o.key: o.record
                    for o in iter_sweep(spec, workers=1, cache=False)}
        report = run_sweep(spec, workers=1, cache=False)
        assert streamed == {o.key: o.record for o in report.outcomes}

    def test_cached_points_stream_first(self, tmp_path):
        spec = small_spec()
        run_sweep(SweepSpec(spec.name, spec.points[:2], runner=spec.runner),
                  workers=1, cache_dir=tmp_path)
        order = [o.cached for o in iter_sweep(spec, workers=1,
                                              cache_dir=tmp_path)]
        assert order == [True, True, False]

    def test_parallel_stream_completes(self, tmp_path):
        spec = small_spec()
        outcomes = list(iter_sweep(spec, workers=2, cache_dir=tmp_path))
        assert len(outcomes) == len(spec.points)
        # And the cache was populated point by point as results landed.
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached

    def test_failure_raises_after_survivors(self, tmp_path):
        def runner(config, **params):
            if params["m"] == 2:
                raise ValueError("stream point broke")
            return {"m": params["m"]}

        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base, params={"m": i})
                  for i in (1, 2, 3)]
        spec = SweepSpec("stream-fail", points, runner=runner)
        seen = []
        with pytest.raises(RuntimeError, match="stream point broke"):
            for outcome in iter_sweep(spec, workers=1, cache=False):
                seen.append(outcome.key)
        # Serial execution fails fast: the earlier sibling still arrived.
        assert seen == [1]


class TestRunSweeps:
    def test_batch_matches_individual_runs(self, tmp_path):
        spec_a = small_spec(name="batch-a")
        spec_b = small_spec(packets=(512,), name="batch-b")
        batched = run_sweeps([spec_a, spec_b], workers=1,
                             cache_dir=tmp_path / "batch")
        solo_a = run_sweep(spec_a, workers=1, cache_dir=tmp_path / "solo")
        solo_b = run_sweep(spec_b, workers=1, cache_dir=tmp_path / "solo")
        assert [o.record for o in batched[0].outcomes] == [
            o.record for o in solo_a.outcomes
        ]
        assert [o.record for o in batched[1].outcomes] == [
            o.record for o in solo_b.outcomes
        ]

    def test_batch_shares_one_pool(self, tmp_path, monkeypatch):
        import repro.sweep.engine as engine

        calls = []
        real = engine._run_parallel

        def counting(jobs, workers):
            calls.append(len(jobs))
            return real(jobs, workers)

        monkeypatch.setattr(engine, "_run_parallel", counting)
        spec_a = small_spec(packets=(64, 128), name="pool-a")
        spec_b = small_spec(packets=(256, 512), name="pool-b")
        run_sweeps([spec_a, spec_b], workers=2, cache=False)
        # One pool invocation covering all four points, not one per spec.
        assert calls == [4]

    def test_point_order_preserved_per_spec(self, tmp_path):
        spec = small_spec()
        report = run_sweeps([spec], workers=2, cache=False)[0]
        assert [o.key for o in report.outcomes] == [
            p.key for p in spec.points
        ]

    def test_progress_counts_across_batch(self, tmp_path):
        spec_a = small_spec(packets=(64,), name="prog-a")
        spec_b = small_spec(packets=(128,), name="prog-b")
        ticks = []

        def progress(done, total, outcome):
            ticks.append((done, total, outcome.cached))

        run_sweeps([spec_a, spec_b], workers=1, cache_dir=tmp_path,
                   progress=progress)
        assert [t[:2] for t in ticks] == [(1, 2), (2, 2)]
        assert all(not cached for _d, _t, cached in ticks)
        # Second run: same shape, everything cached.
        ticks.clear()
        run_sweeps([spec_a, spec_b], workers=1, cache_dir=tmp_path,
                   progress=progress)
        assert [t[:2] for t in ticks] == [(1, 2), (2, 2)]
        assert all(cached for _d, _t, cached in ticks)

    def test_run_sweep_progress_kwarg(self, tmp_path):
        spec = small_spec(packets=(64, 128))
        seen = []
        run_sweep(spec, workers=1, cache=False,
                  progress=lambda done, total, o: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]


class TestBatchDedup:
    """Identical cache keys within one batch simulate exactly once."""

    def _counting_runner(self):
        calls = []

        def runner(config, **params):
            calls.append(params["m"])
            return {"m": params["m"]}

        return runner, calls

    def test_duplicate_specs_simulate_once(self):
        runner, calls = self._counting_runner()
        base = SystemConfig.table2_baseline()
        points = [SweepPoint(key=i, config=base, params={"m": i})
                  for i in (1, 2)]
        spec_a = SweepSpec("dup-a", points, runner=runner)
        spec_b = SweepSpec("dup-b", points, runner=runner)
        reports = run_sweeps([spec_a, spec_b], workers=1, cache=False)
        assert sorted(calls) == [1, 2]  # not [1, 1, 2, 2]
        # Both reports still carry every point; the replayed copies
        # count as (deduped) hits.
        for report in reports:
            assert {o.key for o in report.outcomes} == {1, 2}
        assert reports[0].misses == 2
        assert reports[1].hits == 2

    def test_same_key_points_within_one_spec_simulate_once(self):
        runner, calls = self._counting_runner()
        base = SystemConfig.table2_baseline()
        # Different labels, identical config+params: same cache key.
        points = [SweepPoint(key="left", config=base, params={"m": 8}),
                  SweepPoint(key="right", config=base, params={"m": 8})]
        spec = SweepSpec("dup-in-spec", points, runner=runner)
        report = run_sweep(spec, workers=1, cache=False)
        assert calls == [8]
        assert [o.key for o in report.outcomes] == ["left", "right"]
        assert report.outcomes[0].record == report.outcomes[1].record


class TestDecodeErrorsPropagate:
    def test_parallel_decode_error_raises_not_swallowed(self, tmp_path):
        """A decode() bug must raise, not masquerade as a pool failure
        while silently dropping the outcome from the report."""
        from repro.sweep import register_runner

        def run_point(config, **params):
            return {"m": params.get("m", 0)}

        def bad_decode(record):
            raise KeyError("decode exploded")

        register_runner("bad-decode", run_point,
                        encode=lambda r: r, decode=bad_decode)
        try:
            base = SystemConfig.table2_baseline()
            points = [SweepPoint(key=i, config=base, params={"m": i})
                      for i in (1, 2)]
            spec = SweepSpec("decode-fail", points, runner="bad-decode")
            with pytest.raises(KeyError, match="decode exploded"):
                run_sweep(spec, workers=2, cache=False)
        finally:
            from repro.sweep.spec import RUNNERS

            RUNNERS.pop("bad-decode", None)
