"""Multi-accelerator systems on the switched fabric.

``TestGoldenTwoDevice`` pins a 2-device contention run (ticks, event
count, full stat snapshot) to constants captured when the topology
subsystem landed, so later refactors of the switch fabric, arbitration
or routing cannot silently change observable behaviour.
``TestGoldenTopologySweeps`` extends that anchor to the two ``topo-*``
sweeps that previously had no pinned oracle -- ``topo-p2p`` and
``topo-switch-depth`` at their registered default scales -- giving
orchestrated (sharded, multi-machine) runs of every topology sweep a
bit-identity reference.  The rest covers endpoint scaling,
peer-to-peer vs host-bounce transfers, switch-tier depth, reset
identity across every topology component, and the sweep codecs for the
new result types.
"""

import pytest

from repro import SystemConfig, run_multi_gemm, run_peer_transfer
from repro.core.runner import (
    MultiGemmRunner,
    PeerTransferRunner,
    _snapshot,
)
from repro.core.system import AcceSysSystem
from repro.topology import tiered_topology
from repro.topology.fabric import SwitchedPCIeFabric

#: Captured from the tree that introduced repro.topology:
#: ``MultiGemmRunner().drive(AcceSysSystem(pcie_2gb x2), 64^3 GEMM)``.
GOLDEN_2DEV_PCIE2_64 = {
    "ticks": 152439572,
    "device_ticks": [147959572, 152439572],
    "events_executed": 1912,
    "traffic_bytes": 294912,
}

#: Full MultiGemmRunner snapshot for the same run.
GOLDEN_2DEV_PCIE2_64_STATS = {
    "system.accel0.dma.bytes_read": 131072,
    "system.accel0.dma.bytes_written": 16384,
    "system.accel0.dma.descriptors": 48,
    "system.accel0.dma.segment_ticks.count": 48,
    "system.accel0.dma.segment_ticks.mean": 10435705.6875,
    "system.accel0.dma.segments": 48,
    "system.accel0.sa.busy_ticks": 16384000,
    "system.accel0.sa.idle_ticks": 112320000,
    "system.accel0.sa.macs": 262144,
    "system.accel0.sa.tiles": 16,
    "system.accel1.dma.bytes_read": 131072,
    "system.accel1.dma.bytes_written": 16384,
    "system.accel1.dma.descriptors": 48,
    "system.accel1.dma.segment_ticks.count": 48,
    "system.accel1.dma.segment_ticks.mean": 10899530.5,
    "system.accel1.dma.segments": 48,
    "system.accel1.sa.busy_ticks": 16384000,
    "system.accel1.sa.idle_ticks": 114560000,
    "system.accel1.sa.macs": 262144,
    "system.accel1.sa.tiles": 16,
    "system.iocache.accesses": 96,
    "system.iocache.evictions": 2592,
    "system.iocache.hits": 1504,
    "system.iocache.invalidations": 0,
    "system.iocache.misses": 3104,
    "system.iocache.writebacks": 384,
    "system.llc.accesses": 487,
    "system.llc.evictions": 0,
    "system.llc.hits": 1972,
    "system.llc.invalidations": 0,
    "system.llc.misses": 1544,
    "system.llc.writebacks": 0,
    "system.mem_ctrl.bursts": 1544,
    "system.mem_ctrl.bytes": 98816,
    "system.mem_ctrl.bytes_read": 98816,
    "system.mem_ctrl.bytes_written": 0,
    "system.mem_ctrl.reads": 56,
    "system.mem_ctrl.refresh_stalls": 1,
    "system.mem_ctrl.row_hits": 1528,
    "system.mem_ctrl.row_misses": 16,
    "system.mem_ctrl.writes": 0,
    "system.membus.bytes": 223456,
    "system.membus.snoop_invalidations": 0,
    "system.membus.transactions": 487,
    "system.membus.unrouted": 0,
    "system.pcie.down.arb_wait_ticks": 532294459,
    "system.pcie.down.busy_ticks": 143624000,
    "system.pcie.down.grants": 82,
    "system.pcie.down.payload_bytes": 262240,
    "system.pcie.down.tlps": 1042,
    "system.pcie.down.wire_bytes": 287248,
    "system.pcie.up.arb_wait_ticks": 30784000,
    "system.pcie.up.busy_ticks": 30208000,
    "system.pcie.up.grants": 96,
    "system.pcie.up.payload_bytes": 32768,
    "system.pcie.up.tlps": 1152,
    "system.pcie.up.wire_bytes": 60416,
    "system.smmu.page_faults": 0,
    "system.smmu.ptw_cycles.count": 24,
    "system.smmu.ptw_cycles.mean": 57.583333333333336,
    "system.smmu.stall_ticks": 1871849,
    "system.smmu.trans_cycles.count": 4608,
    "system.smmu.trans_cycles.mean": 1.3415798611111112,
    "system.smmu.translations": 4608,
}


class TestGoldenTwoDevice:
    """Determinism anchor for the whole topology subsystem."""

    def test_contention_run_matches_capture(self):
        runner = MultiGemmRunner()
        system = AcceSysSystem(SystemConfig.pcie_2gb(num_accelerators=2))
        result = runner.drive(system, m=64, k=64, n=64)
        golden = GOLDEN_2DEV_PCIE2_64
        assert result.ticks == golden["ticks"]
        assert result.device_ticks == golden["device_ticks"]
        assert result.total_traffic_bytes == golden["traffic_bytes"]
        assert system.sim.events_executed == golden["events_executed"]
        assert result.component_stats == GOLDEN_2DEV_PCIE2_64_STATS

    def test_reset_then_rerun_identity(self):
        """Every topology component (links, endpoint ports, scratch)
        resets to construction state: a reset system re-runs the
        contention workload bit-identically, event for event."""
        runner = MultiGemmRunner()
        system = AcceSysSystem(SystemConfig.pcie_2gb(num_accelerators=2))
        first = runner.drive(system, m=64, k=64, n=64)
        first_events = system.sim.events_executed

        system.reset()
        second = runner.drive(system, m=64, k=64, n=64)
        assert system.sim.events_executed == first_events
        assert second.ticks == first.ticks
        assert second.device_ticks == first.device_ticks
        assert second.component_stats == first.component_stats
        # Both runs match the capture, not merely each other.
        assert second.component_stats == GOLDEN_2DEV_PCIE2_64_STATS

    def test_tiered_reset_identity(self):
        config = SystemConfig.pcie_2gb().with_topology(tiered_topology(2, 2))
        runner = MultiGemmRunner()
        system = AcceSysSystem(config)
        first = runner.drive(system, m=48, k=48, n=48)
        system.reset()
        second = runner.drive(system, m=48, k=48, n=48)
        assert second.ticks == first.ticks
        assert second.component_stats == first.component_stats

    def test_peer_transfer_reset_identity(self):
        config = SystemConfig.pcie_2gb(num_accelerators=2)
        runner = PeerTransferRunner()
        system = AcceSysSystem(config)
        first = runner.drive(system, size_bytes=128 * 1024, mode="p2p")
        system.reset()
        second = runner.drive(system, size_bytes=128 * 1024, mode="p2p")
        assert second.ticks == first.ticks


#: Captured from the tree that introduced repro.orchestrate: the full
#: ``topo-p2p`` sweep grid (pcie_2gb x2; sizes 64/256/512 KiB).
GOLDEN_TOPO_P2P = {
    ("p2p", 65536): (38514000, 0),
    ("p2p", 262144): (146034000, 0),
    ("p2p", 524288): (289394000, 0),
    ("bounce", 65536): (78188472, 131072),
    ("bounce", 262144): (293236472, 524288),
    ("bounce", 524288): (579956472, 1048576),
}

#: Same capture: the ``topo-switch-depth`` grid (2 devices, 96^3 GEMM,
#: 1..3 chained switch tiers) -> (ticks, device_ticks, uplink busy).
GOLDEN_TOPO_SWITCH_DEPTH = {
    1: (493431572, [486711572, 493431572], 0.9810965237546656),
    2: (497794065, [491074065, 497794065], 0.9724985371209679),
    3: (505122065, [498402065, 505122065], 0.9583901269488198),
}


class TestGoldenTopologySweeps:
    """Pinned oracles for the topo sweeps that lacked them, at the
    registered default scales -- the grids an orchestrated run
    executes.  Shard workers on other machines must reproduce these
    values bit-for-bit or their cache entries are wrong."""

    def test_topo_p2p_sweep_matches_capture(self, tmp_path):
        from repro.sweep import build_sweep, run_sweep

        report = run_sweep(build_sweep("topo-p2p"), workers=1,
                           cache_dir=tmp_path)
        got = {
            key: (r.ticks, r.root_complex_bytes)
            for key, r in report.results().items()
        }
        assert got == GOLDEN_TOPO_P2P

    def test_topo_switch_depth_sweep_matches_capture(self, tmp_path):
        from repro.sweep import build_sweep, run_sweep

        report = run_sweep(build_sweep("topo-switch-depth"), workers=1,
                           cache_dir=tmp_path)
        got = {
            key: (r.ticks, list(r.device_ticks), r.uplink_busy_frac)
            for key, r in report.results().items()
        }
        assert got == GOLDEN_TOPO_SWITCH_DEPTH

    def test_p2p_direct_run_matches_sweep_path(self):
        """The runner reached directly (no sweep engine, no cache)
        reproduces the same pinned numbers -- the oracle is a property
        of the simulator, not of the caching layer."""
        result = run_peer_transfer(
            SystemConfig.pcie_2gb(num_accelerators=2), 262144, mode="p2p"
        )
        assert (result.ticks, result.root_complex_bytes) == \
            GOLDEN_TOPO_P2P[("p2p", 262144)]


class TestEndpointScaling:
    def test_shared_uplink_saturates(self):
        """More endpoints -> higher shared-link utilization and longer
        per-device time (bandwidth splits), while aggregate bandwidth
        stays pinned near the link limit."""
        results = {
            n: run_multi_gemm(
                SystemConfig.pcie_2gb(num_accelerators=n), 64, 64, 64
            )
            for n in (1, 2, 4)
        }
        assert results[2].ticks > 1.5 * results[1].ticks
        assert results[4].ticks > 1.5 * results[2].ticks
        assert (results[4].uplink_busy_frac
                > results[2].uplink_busy_frac
                > results[1].uplink_busy_frac)
        assert results[4].uplink_busy_frac > 0.9
        # The shared link bounds aggregate bandwidth: scaling endpoints
        # does not scale delivered bytes/s.
        assert (results[4].aggregate_bytes_per_sec
                < 1.3 * results[1].aggregate_bytes_per_sec)

    def test_contention_knob_limits_active_devices(self):
        config = SystemConfig.pcie_2gb(num_accelerators=4)
        solo = run_multi_gemm(config, 64, 64, 64, devices=1)
        full = run_multi_gemm(config, 64, 64, 64, devices=4)
        assert solo.active_devices == 1 and solo.num_devices == 4
        assert full.ticks > 2 * solo.ticks
        with pytest.raises(ValueError):
            run_multi_gemm(config, 64, 64, 64, devices=5)

    def test_devmem_cluster_runs(self):
        """DevMem-mode clusters share the device memory, not the fabric."""
        result = run_multi_gemm(
            SystemConfig.devmem_system(num_accelerators=2), 48, 48, 48
        )
        assert result.active_devices == 2
        assert result.ticks >= max(result.device_ticks)


class TestPeerTransfer:
    def test_p2p_beats_host_bounce(self):
        config = SystemConfig.pcie_2gb(num_accelerators=2)
        p2p = run_peer_transfer(config, 256 * 1024, mode="p2p")
        bounce = run_peer_transfer(config, 256 * 1024, mode="bounce")
        assert p2p.ticks < bounce.ticks
        # P2P payload never crosses the root complex; the bounce pays
        # the full round trip twice.
        assert p2p.root_complex_bytes == 0
        assert bounce.root_complex_bytes >= 2 * 256 * 1024

    def test_p2p_needs_switched_fabric(self):
        single = SystemConfig.pcie_2gb()
        with pytest.raises(ValueError, match="two accelerators"):
            run_peer_transfer(single, 4096, mode="p2p")

    def test_p2p_transfer_capped_by_scratch_window(self):
        config = SystemConfig.pcie_2gb(num_accelerators=2)
        with pytest.raises(ValueError, match="scratch window"):
            run_peer_transfer(config, 64 * 1024 * 1024, mode="p2p")

    def test_unknown_mode_rejected(self):
        config = SystemConfig.pcie_2gb(num_accelerators=2)
        with pytest.raises(ValueError, match="mode"):
            run_peer_transfer(config, 4096, mode="teleport")


class TestSwitchDepth:
    def test_each_tier_adds_latency(self):
        ticks = [
            run_multi_gemm(
                SystemConfig.pcie_2gb().with_topology(tiered_topology(2, d)),
                48, 48, 48,
            ).ticks
            for d in (1, 2, 3)
        ]
        assert ticks[0] < ticks[1] < ticks[2]


class TestSystemIntegration:
    def test_switched_system_snapshot_covers_fabric(self):
        system = AcceSysSystem(SystemConfig.pcie_2gb(num_accelerators=2))
        assert isinstance(system.fabric, SwitchedPCIeFabric)
        run_multi_gemm_on = MultiGemmRunner()
        run_multi_gemm_on.drive(system, m=48, k=48, n=48)
        snap = _snapshot(system)
        assert any(key.startswith("system.pcie.up.") for key in snap)
        assert any(key.startswith("system.pcie.down.") for key in snap)

    def test_single_device_keeps_classic_fabric(self):
        from repro.interconnect.pcie.fabric import PCIeFabric

        system = AcceSysSystem(SystemConfig.pcie_2gb())
        assert type(system.fabric) is PCIeFabric
        assert system.endpoint_scratch == []

    def test_explicit_single_endpoint_topology_compiles_switched(self):
        config = SystemConfig.pcie_2gb().with_topology(tiered_topology(1, 1))
        system = AcceSysSystem(config)
        assert isinstance(system.fabric, SwitchedPCIeFabric)
        result = MultiGemmRunner().drive(system, m=48, k=48, n=48)
        assert result.ticks > 0


class TestSweepCodecs:
    def test_multigemm_record_round_trips(self):
        from repro.sweep.spec import RUNNERS

        runner = RUNNERS["multigemm"]
        result = run_multi_gemm(
            SystemConfig.pcie_2gb(num_accelerators=2), 48, 48, 48
        )
        record = runner.encode(result)
        import json
        decoded = runner.decode(json.loads(json.dumps(record)))
        assert decoded == result

    def test_peer_record_round_trips(self):
        from repro.sweep.spec import RUNNERS

        runner = RUNNERS["peer"]
        result = run_peer_transfer(
            SystemConfig.pcie_2gb(num_accelerators=2), 65536, mode="p2p"
        )
        record = runner.encode(result)
        import json
        decoded = runner.decode(json.loads(json.dumps(record)))
        assert decoded == result

    def test_topology_sweeps_registered(self):
        from repro.sweep import SWEEPS, build_sweep

        for name in ("topo-endpoint-scaling", "topo-contention",
                     "topo-p2p", "topo-switch-depth"):
            assert name in SWEEPS
            spec = build_sweep(name)
            assert len(spec.points) > 0

    def test_p2p_sweep_cached_round_trip(self, tmp_path):
        from repro.sweep import build_sweep, run_sweep

        spec = build_sweep("topo-p2p", sizes=(65536,))
        first = run_sweep(spec, cache_dir=tmp_path)
        assert first.misses == 2
        second = run_sweep(spec, cache_dir=tmp_path)
        assert second.hits == 2 and second.misses == 0
        assert {key: r.ticks for key, r in first.results().items()} == \
               {key: r.ticks for key, r in second.results().items()}
