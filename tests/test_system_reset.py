"""System reset and the memoized construction factory.

The sweep engine's per-worker system memoization is only sound if a
reset system is *bit-identical* to a freshly constructed one.  These
tests drive real workloads (GEMM and ViT) through fresh and reset-reused
systems and compare ticks, job stats and the full per-component
statistics snapshot -- any state a reset misses (a resident cache line,
an open DRAM row, a TLB entry, a bumped allocator) shifts at least one
of those numbers.
"""

import numpy as np
import pytest

from repro import SystemConfig
from repro.core.runner import (
    SYSTEM_MEMO_ENV,
    clear_system_memo,
    run_gemm,
    run_vit,
    system_for,
    system_memo_enabled,
)
from repro.core.system import AcceSysSystem
from repro.workloads.vit import ViTConfig

TINY_VIT = ViTConfig("reset-tiny", hidden=64, layers=1, heads=4,
                     image_size=64, patch_size=16)

CONFIGS = [
    SystemConfig.table2_baseline(),
    SystemConfig.pcie_8gb(),
    SystemConfig.devmem_system(),
    SystemConfig.cxl_host(),
]


def drive_gemm(system: AcceSysSystem, size: int = 48) -> tuple:
    """One GEMM launch; returns (end tick, job stats, full stat snapshot)."""
    from repro.core.runner import _snapshot

    done = {}

    def complete(job, stats):
        done["stats"] = dict(stats)
        done["at"] = system.now

    a = system.alloc_buffer("A", size * size * 4)
    b = system.alloc_buffer("B", size * size * 4)
    c = system.alloc_buffer("C", size * size * 4)
    system.driver.launch_gemm(size, size, size, a, b, c, complete)
    system.run()
    return done["at"], done["stats"], _snapshot(system)


class TestResetBitIdentity:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    def test_reused_system_matches_fresh(self, config):
        fresh = drive_gemm(AcceSysSystem(config))
        system = AcceSysSystem(config)
        first = drive_gemm(system)
        system.reset()
        second = drive_gemm(system)
        assert fresh == first == second

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    def test_reset_after_different_size(self, config):
        # Residual state from a *different* working set is the harder
        # case: allocator cursors, cache contents and TLB entries all
        # differ from the fresh run's.
        system = AcceSysSystem(config)
        drive_gemm(system, size=64)
        system.reset()
        reused = drive_gemm(system, size=32)
        fresh = drive_gemm(AcceSysSystem(config), size=32)
        assert reused == fresh

    def test_functional_backing_cleared(self):
        # Two functional runs through the memoized path: the second
        # reuses the first's system, whose backing stores must read as
        # pristine (all zeros) again for the data check to pass.
        clear_system_memo()
        config = SystemConfig.table2_baseline(functional=True)
        first = run_gemm(config, 32, 32, 32, functional=True, seed=7)
        second = run_gemm(config, 32, 32, 32, functional=True, seed=7)
        np.testing.assert_array_equal(first.c_matrix, second.c_matrix)
        assert first.ticks == second.ticks


class TestMemoFactory:
    def test_hit_returns_same_object(self):
        clear_system_memo()
        config = SystemConfig.pcie_8gb()
        first = system_for(config)
        second = system_for(config)
        assert first is second

    def test_distinct_configs_distinct_systems(self):
        clear_system_memo()
        a = system_for(SystemConfig.pcie_8gb())
        b = system_for(SystemConfig.pcie_8gb(dma_tags=8))
        assert a is not b

    def test_env_kill_switch(self, monkeypatch):
        clear_system_memo()
        monkeypatch.setenv(SYSTEM_MEMO_ENV, "0")
        assert not system_memo_enabled()
        config = SystemConfig.pcie_8gb()
        assert system_for(config) is not system_for(config)

    def test_capacity_is_bounded(self):
        from repro.core.runner import SYSTEM_MEMO_CAPACITY, _system_memo

        clear_system_memo()
        for tags in range(1, SYSTEM_MEMO_CAPACITY + 4):
            system_for(SystemConfig.table2_baseline(dma_tags=tags))
        assert len(_system_memo) == SYSTEM_MEMO_CAPACITY

    def test_run_gemm_deterministic_across_memo_reuse(self):
        clear_system_memo()
        config = SystemConfig.table2_baseline()
        first = run_gemm(config, 32, 32, 32)
        second = run_gemm(config, 32, 32, 32)
        assert first.ticks == second.ticks
        assert first.component_stats == second.component_stats

    def test_run_vit_deterministic_across_memo_reuse(self):
        clear_system_memo()
        config = SystemConfig.pcie_8gb()
        first = run_vit(config, TINY_VIT)
        second = run_vit(config, TINY_VIT)
        assert first.total_ticks == second.total_ticks
        assert first.op_ticks == second.op_ticks
        assert first.memo_hits == second.memo_hits

    def test_vit_after_gemm_on_same_system(self):
        # Workload interleaving on one memoized system must not leak
        # state between workload types either.
        clear_system_memo()
        config = SystemConfig.pcie_8gb()
        baseline = run_vit(config, TINY_VIT)
        run_gemm(config, 48, 48, 48)
        again = run_vit(config, TINY_VIT)
        assert baseline.total_ticks == again.total_ticks
        assert baseline.op_ticks == again.op_ticks
