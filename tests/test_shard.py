"""Sweep sharding: deterministic, disjoint, exhaustive point slices."""

import functools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig
from repro.sweep import (
    SWEEPS,
    ResultCache,
    SweepPoint,
    SweepSpec,
    build_sweep,
    gemm_points,
    parse_shard,
    run_sweep,
    shard_points,
)

SIZE = 24


def grid_spec(n: int = 10) -> SweepSpec:
    base = SystemConfig.table2_baseline()
    configs = {64 * (i + 1): base.with_packet_size(64 * (i + 1))
               for i in range(n)}
    return SweepSpec(name="shard-test", points=gemm_points(configs, SIZE))


class TestShardPartitioning:
    @pytest.mark.parametrize("total", [1, 2, 3, 4, 7, 10, 13])
    def test_disjoint_and_exhaustive(self, total):
        points = grid_spec().points
        shards = [shard_points(points, (i, total))
                  for i in range(1, total + 1)]
        seen = [p.key for shard in shards for p in shard]
        assert sorted(seen) == sorted(p.key for p in points)
        assert len(seen) == len(set(seen)), "shards overlap"

    def test_deterministic(self):
        points = grid_spec().points
        first = [p.key for p in shard_points(points, (2, 4))]
        second = [p.key for p in shard_points(points, (2, 4))]
        assert first == second

    def test_no_shard_is_identity(self):
        points = grid_spec().points
        assert shard_points(points, None) == list(points)

    def test_invalid_shards_rejected(self):
        points = grid_spec().points
        for bad in ((0, 4), (5, 4), (1, 0), (-1, 2)):
            with pytest.raises(ValueError, match="shard"):
                shard_points(points, bad)

    def test_parse_shard(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard("4/4") == (4, 4)
        with pytest.raises(ValueError, match="I/N"):
            parse_shard("nope")
        with pytest.raises(ValueError, match="shard"):
            parse_shard("0/4")


@functools.lru_cache(maxsize=None)
def registry_spec(name: str) -> SweepSpec:
    """One reduced-scale build of a registered sweep (construction only,
    nothing is simulated)."""
    return build_sweep(name)


class TestShardPropertiesAcrossRegistry:
    """Property-style guarantees over every *registered* sweep: for
    randomized (spec, N), the N shard slices are pairwise-disjoint,
    exhaustive, order-preserving, and stable -- the invariants the
    orchestrator's work units are built on."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_shards_partition_registered_sweeps(self, data):
        name = data.draw(st.sampled_from(sorted(SWEEPS)))
        spec = registry_spec(name)
        total = data.draw(
            st.integers(min_value=1, max_value=len(spec) + 3),
            label="shard total N",
        )
        shards = [shard_points(spec.points, (index, total))
                  for index in range(1, total + 1)]
        # Disjoint and exhaustive: the multiset of keys across shards
        # is exactly the grid (keys are unique within a spec).
        seen = [repr(point.key) for shard in shards for point in shard]
        assert sorted(seen) == sorted(repr(p.key) for p in spec.points), (
            f"shards of {name!r} with N={total} lose or duplicate points"
        )
        assert len(seen) == len(set(seen)), f"shards of {name!r} overlap"
        # Order-preserving: every slice respects spec point order.
        order = {repr(p.key): i for i, p in enumerate(spec.points)}
        for shard in shards:
            positions = [order[repr(p.key)] for p in shard]
            assert positions == sorted(positions)
        # Stable: recomputing any randomly chosen slice is identical.
        index = data.draw(st.integers(min_value=1, max_value=total),
                          label="shard index I")
        again = shard_points(spec.points, (index, total))
        assert [p.key for p in again] == [p.key for p in shards[index - 1]]

    def test_shard_slices_stable_across_processes(self):
        """The orchestrator's core assumption: a worker on another
        machine slices a named sweep exactly as the dispatcher did."""
        cases = [
            ("pcie-bandwidth", 1, 3),
            ("fig7-transformer", 2, 2),
            ("tab4-translation", 3, 4),
            ("topo-p2p", 2, 3),
            ("ext-cxl-vit", 1, 2),
        ]
        expected = {
            f"{name}:{index}/{total}": [
                repr(p.key)
                for p in shard_points(registry_spec(name).points,
                                      (index, total))
            ]
            for name, index, total in cases
        }
        script = (
            "import json\n"
            "from repro.sweep import build_sweep, shard_points\n"
            f"cases = {cases!r}\n"
            "out = {}\n"
            "for name, index, total in cases:\n"
            "    points = build_sweep(name).points\n"
            "    out[f'{name}:{index}/{total}'] = [\n"
            "        repr(p.key)\n"
            "        for p in shard_points(points, (index, total))]\n"
            "print(json.dumps(out))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == expected


class TestShardedExecution:
    def test_shards_compose_into_full_grid(self, tmp_path):
        """Acceptance: 1/4..4/4 over a shared cache dir cover exactly the
        full grid with no point simulated twice."""
        spec = grid_spec(n=6)
        simulated = 0
        for index in range(1, 5):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path,
                               shard=(index, 4))
            assert report.hits == 0, "shards must not overlap"
            simulated += report.misses
        assert simulated == len(spec)
        assert len(ResultCache(tmp_path)) == len(spec)
        # A final unsharded run replays everything from cache.
        full = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert full.fully_cached
        assert [o.key for o in full.outcomes] == [p.key for p in spec.points]

    def test_shard_results_match_full_run(self, tmp_path):
        spec = grid_spec(n=4)
        full = run_sweep(spec, workers=1, cache_dir=tmp_path / "full")
        halves = {}
        for index in (1, 2):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path / "shard",
                               shard=(index, 2))
            halves.update({o.key: o.record for o in report.outcomes})
        assert halves == {o.key: o.record for o in full.outcomes}

    def test_report_carries_shard(self, tmp_path):
        report = run_sweep(grid_spec(n=4), workers=1, cache=False,
                           shard=(1, 2))
        assert report.shard == (1, 2)
        assert "shard 1/2" in report.describe()

    def test_registered_sweep_shards(self, tmp_path):
        spec = build_sweep("tab4-translation", sizes=(16, 24, 32))
        keys = []
        for index in (1, 2, 3):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path,
                               shard=(index, 3))
            keys.extend(o.key for o in report.outcomes)
        assert sorted(keys) == [16, 24, 32]
