"""Sweep sharding: deterministic, disjoint, exhaustive point slices."""

import pytest

from repro import SystemConfig
from repro.sweep import (
    ResultCache,
    SweepPoint,
    SweepSpec,
    build_sweep,
    gemm_points,
    parse_shard,
    run_sweep,
    shard_points,
)

SIZE = 24


def grid_spec(n: int = 10) -> SweepSpec:
    base = SystemConfig.table2_baseline()
    configs = {64 * (i + 1): base.with_packet_size(64 * (i + 1))
               for i in range(n)}
    return SweepSpec(name="shard-test", points=gemm_points(configs, SIZE))


class TestShardPartitioning:
    @pytest.mark.parametrize("total", [1, 2, 3, 4, 7, 10, 13])
    def test_disjoint_and_exhaustive(self, total):
        points = grid_spec().points
        shards = [shard_points(points, (i, total))
                  for i in range(1, total + 1)]
        seen = [p.key for shard in shards for p in shard]
        assert sorted(seen) == sorted(p.key for p in points)
        assert len(seen) == len(set(seen)), "shards overlap"

    def test_deterministic(self):
        points = grid_spec().points
        first = [p.key for p in shard_points(points, (2, 4))]
        second = [p.key for p in shard_points(points, (2, 4))]
        assert first == second

    def test_no_shard_is_identity(self):
        points = grid_spec().points
        assert shard_points(points, None) == list(points)

    def test_invalid_shards_rejected(self):
        points = grid_spec().points
        for bad in ((0, 4), (5, 4), (1, 0), (-1, 2)):
            with pytest.raises(ValueError, match="shard"):
                shard_points(points, bad)

    def test_parse_shard(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard("4/4") == (4, 4)
        with pytest.raises(ValueError, match="I/N"):
            parse_shard("nope")
        with pytest.raises(ValueError, match="shard"):
            parse_shard("0/4")


class TestShardedExecution:
    def test_shards_compose_into_full_grid(self, tmp_path):
        """Acceptance: 1/4..4/4 over a shared cache dir cover exactly the
        full grid with no point simulated twice."""
        spec = grid_spec(n=6)
        simulated = 0
        for index in range(1, 5):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path,
                               shard=(index, 4))
            assert report.hits == 0, "shards must not overlap"
            simulated += report.misses
        assert simulated == len(spec)
        assert len(ResultCache(tmp_path)) == len(spec)
        # A final unsharded run replays everything from cache.
        full = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert full.fully_cached
        assert [o.key for o in full.outcomes] == [p.key for p in spec.points]

    def test_shard_results_match_full_run(self, tmp_path):
        spec = grid_spec(n=4)
        full = run_sweep(spec, workers=1, cache_dir=tmp_path / "full")
        halves = {}
        for index in (1, 2):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path / "shard",
                               shard=(index, 2))
            halves.update({o.key: o.record for o in report.outcomes})
        assert halves == {o.key: o.record for o in full.outcomes}

    def test_report_carries_shard(self, tmp_path):
        report = run_sweep(grid_spec(n=4), workers=1, cache=False,
                           shard=(1, 2))
        assert report.shard == (1, 2)
        assert "shard 1/2" in report.describe()

    def test_registered_sweep_shards(self, tmp_path):
        spec = build_sweep("tab4-translation", sizes=(16, 24, 32))
        keys = []
        for index in (1, 2, 3):
            report = run_sweep(spec, workers=1, cache_dir=tmp_path,
                               shard=(index, 3))
            keys.extend(o.key for o in report.outcomes)
        assert sorted(keys) == [16, 24, 32]
