"""Integration tests for the ViT runner."""

import pytest

from repro import SystemConfig, run_vit
from repro.workloads import ViTConfig

#: A miniature model that keeps test runtimes small but exercises every
#: operator class.
TINY = ViTConfig("tiny", hidden=64, layers=2, heads=4,
                 image_size=64, patch_size=16)


class TestViTRunner:
    def test_runs_to_completion(self):
        result = run_vit(SystemConfig.pcie_2gb(), TINY)
        assert result.total_ticks > 0
        assert result.gemm_ticks > 0
        assert result.nongemm_ticks > 0

    def test_memoization_hits(self):
        result = run_vit(SystemConfig.pcie_2gb(), TINY, memoize=True)
        # Layer 1 repeats every layer-0 shape.
        assert result.memo_hits > 0

    def test_memoization_preserves_totals(self):
        memo = run_vit(SystemConfig.pcie_2gb(), TINY, memoize=True)
        full = run_vit(SystemConfig.pcie_2gb(), TINY, memoize=False)
        # Memoized replay should match the fully simulated run closely
        # (state differences across layers are second-order).
        assert memo.total_ticks == pytest.approx(full.total_ticks, rel=0.1)

    def test_devmem_hurts_nongemm(self):
        """Fig. 8: non-GEMM ops are much slower with device-side data."""
        host = run_vit(SystemConfig.pcie_64gb(), TINY)
        dev = run_vit(SystemConfig.devmem_system(), TINY)
        assert dev.nongemm_ticks > 2 * host.nongemm_ticks

    def test_devmem_helps_gemm_vs_slow_pcie(self):
        host = run_vit(SystemConfig.pcie_2gb(), TINY)
        dev = run_vit(SystemConfig.devmem_system(), TINY)
        assert dev.gemm_ticks < host.gemm_ticks

    def test_pcie_bandwidth_ordering_on_vit(self):
        t2 = run_vit(SystemConfig.pcie_2gb(), TINY).total_ticks
        t64 = run_vit(SystemConfig.pcie_64gb(), TINY).total_ticks
        assert t64 < t2

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_vit(SystemConfig.pcie_2gb(), "gigantic")

    def test_dim_scale(self):
        scaled = run_vit(SystemConfig.pcie_2gb(), "base", dim_scale=0.125)
        assert "x0.125" in scaled.model_name
        assert scaled.total_ticks > 0

    def test_op_ticks_recorded(self):
        result = run_vit(SystemConfig.pcie_2gb(), TINY)
        assert "l0.qkv" in result.op_ticks
        assert "l0.softmax" in result.op_ticks
        assert result.op_ticks["l0.qkv"] > 0

    def test_nongemm_fraction_property(self):
        result = run_vit(SystemConfig.pcie_2gb(), TINY)
        assert 0 < result.nongemm_fraction < 1
