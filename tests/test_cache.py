"""Unit and property tests for the cache hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheParams, TagStore, make_policy
from repro.memory.addr_range import AddrRange
from repro.memory.physmem import PhysicalMemory
from repro.memory.simple import SimpleMemory
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction

GB = 10**9


def make_cache(size=4096, assoc=4, mshrs=16, mem_latency=ns(100), **kw):
    sim = Simulator()
    mem = FixedLatencyTarget(sim, "mem", latency=mem_latency)
    params = CacheParams(size=size, assoc=assoc, hit_latency=ns(2),
                         miss_latency=ns(2), mshrs=mshrs, **kw)
    cache = Cache(sim, "l1", params, mem)
    return sim, cache, mem


def do_access(sim, cache, addr, size, write=False):
    """Send one access and return its completion tick."""
    done = []
    txn = Transaction.write(addr, size) if write else Transaction.read(addr, size)
    cache.send(txn, lambda t: done.append(sim.now))
    sim.run()
    return done[0]


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        policy = make_policy("lru", num_sets=1, assoc=4)
        for way in range(4):
            policy.insert(0, way)
        policy.touch(0, 0)  # way 0 is now most recent
        assert policy.victim(0, [0, 1, 2, 3]) == 1

    def test_fifo_ignores_touches(self):
        policy = make_policy("fifo", num_sets=1, assoc=4)
        for way in range(4):
            policy.insert(0, way)
        policy.touch(0, 0)
        assert policy.victim(0, [0, 1, 2, 3]) == 0

    def test_random_is_seeded(self):
        a = make_policy("random", 1, 8)
        b = make_policy("random", 1, 8)
        picks_a = [a.victim(0, list(range(8))) for _ in range(10)]
        picks_b = [b.victim(0, list(range(8))) for _ in range(10)]
        assert picks_a == picks_b

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("plru", 1, 4)


class TestTagStore:
    def test_fill_then_hit(self):
        tags = TagStore(size=1024, assoc=2, line_size=64)
        assert not tags.access(5)
        assert tags.fill(5) is None
        assert tags.access(5)

    def test_eviction_on_full_set(self):
        tags = TagStore(size=256, assoc=2, line_size=64)  # 2 sets
        # Lines 0, 2, 4 all map to set 0.
        tags.fill(0)
        tags.fill(2)
        victim = tags.fill(4)
        assert victim == (0, False)
        assert not tags.probe(0)
        assert tags.probe(2) and tags.probe(4)

    def test_dirty_eviction_reported(self):
        tags = TagStore(size=256, assoc=2, line_size=64)
        tags.fill(0)
        tags.mark_dirty(0)
        tags.fill(2)
        victim = tags.fill(4)
        assert victim == (0, True)

    def test_refill_merges_dirty(self):
        tags = TagStore(size=256, assoc=2, line_size=64)
        tags.fill(7, dirty=True)
        assert tags.fill(7, dirty=False) is None
        assert tags.is_dirty(7)

    def test_invalidate(self):
        tags = TagStore(size=256, assoc=2, line_size=64)
        tags.fill(3, dirty=True)
        assert tags.invalidate(3) is True
        assert not tags.probe(3)
        assert tags.invalidate(3) is False

    def test_mark_dirty_missing_line(self):
        tags = TagStore(size=256, assoc=2, line_size=64)
        with pytest.raises(KeyError):
            tags.mark_dirty(99)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TagStore(size=1000, assoc=3, line_size=64)
        with pytest.raises(ValueError):
            TagStore(size=1024, assoc=2, line_size=60)

    def test_lru_order_respected(self):
        tags = TagStore(size=256, assoc=2, line_size=64)  # 2 sets
        tags.fill(0)
        tags.fill(2)
        tags.access(0)  # 0 most recent; victim should be 2
        victim = tags.fill(4)
        assert victim[0] == 2


class TestCacheTiming:
    def test_miss_then_hit_faster(self):
        sim, cache, _ = make_cache()
        t_miss = do_access(sim, cache, 0, 64)
        start = sim.now
        t_hit = do_access(sim, cache, 0, 64) - start
        assert t_miss >= ns(100)
        assert t_hit <= ns(4)

    def test_hit_and_miss_counters(self):
        sim, cache, _ = make_cache()
        do_access(sim, cache, 0, 128)       # 2 lines miss
        do_access(sim, cache, 0, 128)       # 2 lines hit
        assert cache.stats["misses"].value == 2
        assert cache.stats["hits"].value == 2
        assert cache.hit_rate == 0.5

    def test_partial_hit_fetches_only_missing(self):
        sim, cache, mem = make_cache()
        do_access(sim, cache, 0, 64)   # line 0 misses
        do_access(sim, cache, 0, 192)  # line 0 hit, lines 1-2 miss
        assert cache.stats["hits"].value == 1
        assert cache.stats["misses"].value == 3
        # Lines 1-2 are contiguous -> one coalesced fetch (plus the first).
        assert mem.stats["transactions"].value == 2

    def test_write_allocate_marks_dirty(self):
        sim, cache, _ = make_cache()
        do_access(sim, cache, 0, 64, write=True)
        assert cache.tags.is_dirty(0)

    def test_dirty_eviction_writes_back(self):
        sim, cache, mem = make_cache(size=256, assoc=2)  # 2 sets, 4 lines
        do_access(sim, cache, 0, 64, write=True)      # line 0, set 0
        do_access(sim, cache, 128, 64)                # line 2, set 0
        do_access(sim, cache, 256, 64)                # line 4, set 0: evicts 0
        sim.run()
        assert cache.stats["writebacks"].value == 1

    def test_write_no_allocate_forwards(self):
        sim, cache, mem = make_cache(write_allocate=False)
        do_access(sim, cache, 0, 64, write=True)
        assert cache.tags.resident_lines == 0
        assert mem.stats["transactions"].value == 1

    def test_mshr_limit_serializes(self):
        sim_few, cache_few, _ = make_cache(mshrs=1, mem_latency=ns(100))
        done_few = []
        for i in range(4):
            cache_few.send(
                Transaction.read(i * 4096, 64),
                lambda t: done_few.append(sim_few.now),
            )
        sim_few.run()

        sim_many, cache_many, _ = make_cache(mshrs=8, mem_latency=ns(100))
        done_many = []
        for i in range(4):
            cache_many.send(
                Transaction.read(i * 4096, 64),
                lambda t: done_many.append(sim_many.now),
            )
        sim_many.run()
        assert max(done_few) > max(done_many)

    def test_invalidate_range_drops_lines(self):
        sim, cache, _ = make_cache()
        do_access(sim, cache, 0, 256)
        assert cache.tags.resident_lines == 4
        dropped = cache.invalidate_range(0, 128)
        assert dropped == 2
        assert cache.tags.resident_lines == 2

    def test_invalidate_dirty_generates_writeback(self):
        sim, cache, mem = make_cache()
        do_access(sim, cache, 0, 64, write=True)
        cache.invalidate_range(0, 64)
        sim.run()
        assert cache.stats["writebacks"].value == 1


class TestCacheFunctional:
    def test_read_your_writes_through_cache(self):
        sim = Simulator()
        store = PhysicalMemory(AddrRange(0, 1 << 20))
        mem = SimpleMemory(sim, "mem", AddrRange(0, 1 << 20), ns(50), 10 * GB, store)
        cache = Cache(sim, "l1", CacheParams(size=4096, assoc=4), mem, store)
        payload = np.arange(64, dtype=np.uint8)
        cache.send(Transaction.write(0, 64, payload), lambda t: None)
        got = []
        cache.send(Transaction.read(0, 64), lambda t: got.append(t.data))
        sim.run()
        np.testing.assert_array_equal(got[0], payload)


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=60
        )
    )
    def test_resident_never_exceeds_capacity(self, addrs):
        tags = TagStore(size=1024, assoc=2, line_size=64)  # 16 lines
        for line in addrs:
            tags.fill(line)
        assert tags.resident_lines <= 16

    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=40
        )
    )
    def test_repeat_access_after_fill_always_hits(self, addrs):
        """Filling then immediately accessing the same line always hits."""
        tags = TagStore(size=2048, assoc=4, line_size=64)
        for line in addrs:
            tags.fill(line)
            assert tags.access(line)

    @settings(max_examples=20, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2048 - 64),
                st.sampled_from([64, 128, 256]),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_hits_plus_misses_equals_lines(self, accesses):
        sim, cache, _ = make_cache(size=1024, assoc=4)
        total_lines = 0
        for addr, size in accesses:
            addr = (addr // 64) * 64
            total_lines += Transaction.read(addr, size).num_lines(64)
            cache.send(Transaction.read(addr, size), lambda t: None)
            sim.run()
        got = cache.stats["hits"].value + cache.stats["misses"].value
        assert got == total_lines
