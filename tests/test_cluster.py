"""Integration tests for accelerator clusters sharing the PCIe fabric."""

import pytest

from repro import SystemConfig
from repro.core.system import AcceSysSystem
from repro.workloads import GemmWorkload


def make_cluster(n=2, **kw):
    config = SystemConfig.pcie_2gb(num_accelerators=n, **kw)
    return AcceSysSystem(config)


def launch_on(system, driver, size, done_list):
    workload = GemmWorkload(size, size, size)
    prefix = driver.name
    a = driver.pin_buffer(f"{prefix}.A", workload.a_bytes)
    b = driver.pin_buffer(f"{prefix}.B", workload.b_bytes)
    c = driver.pin_buffer(f"{prefix}.C", workload.c_bytes)
    driver.launch_gemm(
        size, size, size, a, b, c,
        lambda job, stats: done_list.append(system.now),
    )


class TestClusterConstruction:
    def test_single_accelerator_default(self):
        system = AcceSysSystem(SystemConfig.pcie_2gb())
        assert len(system.wrappers) == 1
        assert system.wrapper is system.wrappers[0]

    def test_two_accelerators_enumerate(self):
        system = make_cluster(2)
        assert len(system.wrappers) == 2
        assert len(system.drivers) == 2
        slots = {driver.slot for driver in system.drivers}
        assert len(slots) == 2  # each driver bound its own function

    def test_bar_windows_disjoint(self):
        system = make_cluster(3)
        bars = [driver.bar0 for driver in system.drivers]
        for i, a in enumerate(bars):
            for b in bars[i + 1:]:
                assert not a.overlaps(b)

    def test_iova_spaces_disjoint(self):
        system = make_cluster(2)
        a0 = system.drivers[0].pin_buffer("x", 1 << 20)
        a1 = system.drivers[1].pin_buffer("x", 1 << 20)
        assert abs(a0 - a1) >= 1 << 20

    def test_zero_accelerators_rejected(self):
        with pytest.raises(ValueError):
            AcceSysSystem(SystemConfig.pcie_2gb(num_accelerators=0))


class TestConcurrentExecution:
    def test_both_jobs_complete(self):
        system = make_cluster(2)
        done = []
        for driver in system.drivers:
            launch_on(system, driver, 64, done)
        system.run()
        assert len(done) == 2

    def test_link_sharing_slows_concurrent_jobs(self):
        """Two concurrent GEMMs on a shared 2 GB/s link take about twice
        as long as one job running alone (bandwidth is split)."""
        solo = AcceSysSystem(SystemConfig.pcie_2gb())
        done_solo = []
        launch_on(solo, solo.driver, 128, done_solo)
        solo.run()
        t_solo = done_solo[0]

        pair = make_cluster(2)
        done_pair = []
        for driver in pair.drivers:
            launch_on(pair, driver, 128, done_pair)
        pair.run()
        t_pair = max(done_pair)

        assert t_pair > 1.5 * t_solo
        assert t_pair < 2.6 * t_solo

    def test_results_correct_under_contention(self):
        import numpy as np

        config = SystemConfig.pcie_2gb(num_accelerators=2, functional=True)
        system = AcceSysSystem(config)
        size = 32
        jobs = []
        for index, driver in enumerate(system.drivers):
            workload = GemmWorkload(size, size, size, seed=100 + index)
            a_data, b_data = workload.generate()
            prefix = driver.name
            a = driver.pin_buffer(f"{prefix}.A", workload.a_bytes)
            b = driver.pin_buffer(f"{prefix}.B", workload.b_bytes)
            c = driver.pin_buffer(f"{prefix}.C", workload.c_bytes)
            holder = {}
            driver.launch_gemm(
                size, size, size, a, b, c,
                lambda job, stats, h=holder: h.update(result=job.c_result),
                a_data=a_data, b_data=b_data,
            )
            jobs.append((workload, a_data, b_data, holder))
        system.run()
        for workload, a_data, b_data, holder in jobs:
            np.testing.assert_array_equal(
                holder["result"], workload.reference(a_data, b_data)
            )
