"""Unit tests for the accelerator wrapper, register file, and driver."""

import numpy as np
import pytest

from repro.accel.wrapper import (
    ACCESYS_DEVICE_ID,
    ACCESYS_VENDOR_ID,
    REG_DOORBELL,
    REG_K,
    REG_M,
    REG_N,
    REG_STATUS,
    STATUS_DONE,
    STATUS_IDLE,
    STATUS_RUNNING,
    AcceleratorWrapper,
    RegisterFile,
)
from repro.core.config import SystemConfig
from repro.core.system import AcceSysSystem
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction


class TestRegisterFile:
    def test_u32_round_trip(self):
        sim = Simulator()
        regs = RegisterFile(sim, "regs")
        regs.write_u32(REG_M, 1234)
        assert regs.read_u32(REG_M) == 1234

    def test_u64_round_trip(self):
        sim = Simulator()
        regs = RegisterFile(sim, "regs")
        regs.write_u64(0x20, 0x1_2345_6789)
        assert regs.read_u64(0x20) == 0x1_2345_6789

    def test_mmio_write_lands(self):
        sim = Simulator()
        regs = RegisterFile(sim, "regs")
        payload = np.frombuffer((42).to_bytes(4, "little"), dtype=np.uint8).copy()
        regs.send(Transaction.write(REG_M, 4, payload), lambda t: None)
        sim.run()
        assert regs.read_u32(REG_M) == 42

    def test_mmio_read_returns_data(self):
        sim = Simulator()
        regs = RegisterFile(sim, "regs")
        regs.write_u32(REG_K, 77)
        got = []
        regs.send(Transaction.read(REG_K, 4), lambda t: got.append(t.data))
        sim.run()
        assert int.from_bytes(got[0].tobytes(), "little") == 77

    def test_doorbell_triggers_handler(self):
        sim = Simulator()
        regs = RegisterFile(sim, "regs")
        rang = []
        regs.set_doorbell_handler(lambda: rang.append(sim.now))
        payload = np.frombuffer((1).to_bytes(4, "little"), dtype=np.uint8).copy()
        regs.send(Transaction.write(REG_DOORBELL, 4, payload), lambda t: None)
        sim.run()
        assert len(rang) == 1


class TestWrapper:
    def make_wrapper(self):
        sim = Simulator()
        target = FixedLatencyTarget(sim, "path", latency=ns(100))
        wrapper = AcceleratorWrapper(sim, "acc", target)
        return sim, wrapper

    def test_pcie_identity(self):
        _, wrapper = self.make_wrapper()
        assert wrapper.pcie_function.vendor_id == ACCESYS_VENDOR_ID
        assert wrapper.pcie_function.device_id == ACCESYS_DEVICE_ID
        assert len(wrapper.pcie_function.bars) == 2

    def test_doorbell_runs_job(self):
        sim, wrapper = self.make_wrapper()
        regs = wrapper.regs
        regs.write_u32(REG_M, 128)
        regs.write_u32(REG_K, 128)
        regs.write_u32(REG_N, 128)
        regs.write_u64(0x20, 0)
        regs.write_u64(0x28, 0x40000)
        regs.write_u64(0x30, 0x80000)
        completions = []
        wrapper.set_msi_handler(lambda job, stats: completions.append(stats))
        assert wrapper.status == STATUS_IDLE
        payload = np.frombuffer((1).to_bytes(4, "little"), dtype=np.uint8).copy()
        regs.send(Transaction.write(REG_DOORBELL, 4, payload), lambda t: None)
        sim.run(max_events=3)
        assert wrapper.status == STATUS_RUNNING
        sim.run()
        assert wrapper.status == STATUS_DONE
        assert completions and completions[0]["tiles"] == 64

    def test_double_doorbell_rejected(self):
        sim, wrapper = self.make_wrapper()
        regs = wrapper.regs
        for reg, val in ((REG_M, 32), (REG_K, 32), (REG_N, 32)):
            regs.write_u32(reg, val)
        regs.write_u32(REG_STATUS, STATUS_RUNNING)
        with pytest.raises(RuntimeError):
            wrapper._on_doorbell()


class TestDriver:
    def test_probe_finds_device(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        assert system.driver.slot is not None

    def test_pin_buffer_maps_pages(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        iova = system.driver.pin_buffer("buf", 3 * 4096)
        paddr = system.driver.buffer_paddr("buf")
        assert iova != paddr  # virtual addressing in use
        assert system.page_table.translate(iova) == paddr
        assert system.page_table.translate(iova + 8192) == paddr + 8192

    def test_pin_without_smmu_returns_paddr(self):
        system = AcceSysSystem(SystemConfig.table2_baseline(smmu=None))
        addr = system.driver.pin_buffer("buf", 4096)
        assert addr == system.driver.buffer_paddr("buf")

    def test_launch_requires_probe(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        system.driver.slot = None
        with pytest.raises(RuntimeError):
            system.driver.launch_gemm(16, 16, 16, 0, 0, 0, lambda j, s: None)

    def test_launch_has_mmio_cost(self):
        """Launch latency comes from real MMIO writes over PCIe."""
        system = AcceSysSystem(SystemConfig.table2_baseline())
        a = system.driver.pin_buffer("A", 4096)
        b = system.driver.pin_buffer("B", 4096)
        c = system.driver.pin_buffer("C", 4096)
        started = []
        system.driver.launch_gemm(
            16, 16, 16, a, b, c, lambda j, s: started.append(system.now)
        )
        system.run()
        # 9 posted MMIO writes through switch+RC before compute begins.
        assert started[0] > 9 * (ns(150) + ns(50))
        assert system.driver.stats["mmio_writes"].value == 9

    def test_allocator_exhaustion(self):
        from repro.accel.driver import BumpAllocator
        from repro.memory.addr_range import AddrRange

        alloc = BumpAllocator(AddrRange(0, 8192))
        alloc.alloc(4096)
        with pytest.raises(MemoryError):
            alloc.alloc(8192)

    def test_allocator_alignment(self):
        from repro.accel.driver import BumpAllocator
        from repro.memory.addr_range import AddrRange

        alloc = BumpAllocator(AddrRange(0, 1 << 20))
        alloc.alloc(100)
        second = alloc.alloc(100)
        assert second % 4096 == 0


class TestSoftwareCoherency:
    def test_flush_buffer_drops_cached_lines(self):
        """DM-mode coherency: the driver flushes CPU caches by hand."""
        from repro.sim.transaction import Transaction

        system = AcceSysSystem(SystemConfig.table2_baseline())
        driver = system.driver
        driver.pin_buffer("buf", 4096)
        paddr = driver.buffer_paddr("buf")
        # Warm L1 and LLC with the buffer.
        system.l1d.send(
            Transaction.read(paddr, 512, source="system.cpu"), lambda t: None
        )
        system.run()
        assert system.l1d.tags.resident_lines > 0

        dropped = driver.flush_buffer("buf", [system.l1d, system.llc])
        assert dropped > 0
        assert system.l1d.tags.resident_lines == 0

    def test_flush_unknown_buffer(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        with pytest.raises(KeyError):
            system.driver.flush_buffer("ghost", [system.l1d])
