"""Unit tests for the multi-channel DMA engine."""

import pytest

from repro.dma import DMADescriptor, DMADirection, DMAEngine
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget, QueueStation
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction


def make_engine(target_latency=ns(100), **kw):
    sim = Simulator()
    target = FixedLatencyTarget(sim, "path", latency=target_latency)
    engine = DMAEngine(sim, "dma", target, **kw)
    return sim, engine, target


def read_desc(addr=0, size=4096, **kw):
    return DMADescriptor(addr, size, DMADirection.HOST_TO_DEVICE, **kw)


def write_desc(addr=0, size=4096, **kw):
    return DMADescriptor(addr, size, DMADirection.DEVICE_TO_HOST, **kw)


class TestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            DMADescriptor(0, 0, DMADirection.HOST_TO_DEVICE)
        with pytest.raises(ValueError):
            DMADescriptor(-1, 64, DMADirection.HOST_TO_DEVICE)
        with pytest.raises(ValueError):
            DMADescriptor(0, 64, DMADirection.HOST_TO_DEVICE, packet_size=0)

    def test_direction_predicates(self):
        assert read_desc().is_read
        assert not write_desc().is_read


class TestEngine:
    def test_single_descriptor_completes(self):
        sim, engine, _ = make_engine()
        done = []
        engine.submit(read_desc(size=4096), lambda d: done.append(d))
        sim.run()
        assert len(done) == 1
        assert done[0].completed_at == sim.now
        assert engine.idle

    def test_descriptor_split_into_segments(self):
        sim, engine, target = make_engine(segment_bytes=1024)
        engine.submit(read_desc(size=4096))
        sim.run()
        assert engine.stats["segments"].value == 4
        assert target.stats["transactions"].value == 4

    def test_packet_size_rides_on_transactions(self):
        sim = Simulator()
        seen = []

        class Recorder(FixedLatencyTarget):
            def send(self, txn, on_complete):
                seen.append(txn.packet_size)
                super().send(txn, on_complete)

        target = Recorder(sim, "path", latency=ns(10))
        engine = DMAEngine(sim, "dma", target, segment_bytes=4096)
        engine.submit(read_desc(size=8192, packet_size=256))
        sim.run()
        # Segment granularity unchanged; the TLP knob rides on each txn.
        assert seen == [256, 256]

    def test_tag_limit_respected(self):
        sim, engine, _ = make_engine(max_outstanding=2, segment_bytes=64)
        peak = {"tags": 0}
        original_issue = engine._issue_segment

        def watched(work):
            original_issue(work)
            peak["tags"] = max(peak["tags"], engine.tags_in_use)

        engine._issue_segment = watched
        engine.submit(read_desc(size=1024))
        sim.run()
        assert peak["tags"] <= 2

    def test_round_robin_interleaves_channels(self):
        sim = Simulator()
        order = []

        class Recorder(FixedLatencyTarget):
            def send(self, txn, on_complete):
                order.append(txn.stream)
                super().send(txn, on_complete)

        target = Recorder(sim, "path", latency=ns(10))
        engine = DMAEngine(sim, "dma", target, num_channels=2,
                           segment_bytes=64, max_outstanding=2)
        engine.submit(read_desc(size=256, stream="a"), channel=0)
        engine.submit(read_desc(size=256, stream="b"), channel=1)
        sim.run()
        # Both streams appear, interleaved rather than strictly sequential:
        # the first "b" segment is issued before the last "a" completes.
        assert set(order) == {"a", "b"}
        assert order.index("b") < len(order) - 1 - order[::-1].index("a")

    def test_submit_list_completion(self):
        sim, engine, _ = make_engine()
        done = []
        descs = [read_desc(addr=i * 8192, size=4096) for i in range(3)]
        engine.submit_list(descs, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert all(d.completed_at is not None for d in descs)

    def test_submit_empty_list(self):
        sim, engine, _ = make_engine()
        done = []
        engine.submit_list([], lambda: done.append(True))
        assert done == [True]

    def test_read_write_byte_stats(self):
        sim, engine, _ = make_engine()
        engine.submit(read_desc(size=4096))
        engine.submit(write_desc(size=2048))
        sim.run()
        assert engine.stats["bytes_read"].value == 4096
        assert engine.stats["bytes_written"].value == 2048

    def test_invalid_channel(self):
        sim, engine, _ = make_engine(num_channels=2)
        with pytest.raises(ValueError):
            engine.submit(read_desc(), channel=5)

    def test_validation(self):
        sim = Simulator()
        target = FixedLatencyTarget(sim, "t", 1)
        with pytest.raises(ValueError):
            DMAEngine(sim, "dma", target, num_channels=0)
        with pytest.raises(ValueError):
            DMAEngine(sim, "dma", target, max_outstanding=0)
        with pytest.raises(ValueError):
            DMAEngine(sim, "dma", target, segment_bytes=0)

    def test_more_tags_more_throughput(self):
        """With a serialized target, tags pipeline but never reorder;
        with a fixed-latency target, more tags hide more latency."""

        def run(tags):
            sim, engine, _ = make_engine(
                target_latency=ns(500), max_outstanding=tags, segment_bytes=64
            )
            engine.submit(read_desc(size=64 * 64))
            sim.run()
            return sim.now

        assert run(16) < run(1)

    def test_segment_latency_histogram(self):
        sim, engine, _ = make_engine(target_latency=ns(100), segment_bytes=4096)
        engine.submit(read_desc(size=4096))
        sim.run()
        hist = engine.stats["segment_ticks"]
        assert hist.count == 1
        assert hist.mean == ns(100)

    def test_fully_issued_work_retires_from_its_own_channel(self):
        """Regression for the retire path: work carries its channel index.

        Identical descriptors queued on every channel used to make the
        old retire scan ambiguous-looking (it walked all channels for
        the head matching by identity); the threaded index must retire
        each work from exactly its owning queue, so every channel drains
        and every completion fires once.
        """
        sim, engine, _ = make_engine(num_channels=4, segment_bytes=64,
                                     max_outstanding=2)
        done = []
        for channel in range(4):
            # Same address/size on purpose: only identity/channel differ.
            engine.submit(read_desc(addr=0, size=256),
                          lambda d, c=channel: done.append(c),
                          channel=channel)
        sim.run()
        assert sorted(done) == [0, 1, 2, 3]
        assert engine.idle
        assert all(not ch.queue for ch in engine._channels)

    def test_work_records_channel_and_descriptor_fields(self):
        sim, engine, _ = make_engine(num_channels=2, segment_bytes=64,
                                     max_outstanding=1)
        engine.submit(read_desc(size=128), channel=1)
        work = engine._channels[1].queue[0]
        assert work.channel == 1
        assert work.size == 128
        assert work.is_read
        sim.run()
        assert engine.idle
