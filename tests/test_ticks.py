"""Unit tests for the integer time base."""

import pytest

from repro.sim import ticks
from repro.sim.ticks import (
    GHZ,
    TICKS_PER_SEC,
    cycles_to_ticks,
    freq_to_period,
    from_seconds,
    gbps_to_bytes_per_sec,
    ns,
    ps,
    serialization_ticks,
    ticks_to_ns,
    ticks_to_seconds,
    us,
)


class TestConversions:
    def test_one_tick_is_one_picosecond(self):
        assert ps(1) == 1
        assert ns(1) == 1000
        assert us(1) == 1_000_000
        assert from_seconds(1) == TICKS_PER_SEC

    def test_fractional_ns(self):
        assert ns(1.5) == 1500
        assert ns(0.001) == 1

    def test_round_trip_seconds(self):
        assert ticks_to_seconds(from_seconds(0.25)) == pytest.approx(0.25)

    def test_round_trip_ns(self):
        assert ticks_to_ns(ns(123.0)) == pytest.approx(123.0)

    def test_ticks_to_us(self):
        assert ticks.ticks_to_us(us(7)) == pytest.approx(7.0)


class TestFrequency:
    def test_one_ghz_period(self):
        assert freq_to_period(1 * GHZ) == 1000

    def test_two_ghz_period(self):
        assert freq_to_period(2 * GHZ) == 500

    def test_period_never_zero(self):
        assert freq_to_period(10**13) == 1

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            freq_to_period(0)
        with pytest.raises(ValueError):
            freq_to_period(-1)

    def test_cycles_to_ticks(self):
        assert cycles_to_ticks(10, 1000) == 10_000


class TestBandwidth:
    def test_gbps_conversion(self):
        # 8 Gb/s == 1e9 bytes/s
        assert gbps_to_bytes_per_sec(8) == 10**9

    def test_serialization_exact(self):
        # 1000 bytes at 1 GB/s -> 1 us
        assert serialization_ticks(1000, 10**9) == us(1)

    def test_serialization_rounds_up(self):
        # 1 byte at 3 bytes/s: 1/3 s -> must round up
        got = serialization_ticks(1, 3)
        assert got == (TICKS_PER_SEC + 2) // 3

    def test_serialization_zero_bytes(self):
        assert serialization_ticks(0, 10**9) == 0

    def test_serialization_negative_bytes(self):
        assert serialization_ticks(-5, 10**9) == 0

    def test_serialization_bad_bandwidth(self):
        with pytest.raises(ValueError):
            serialization_ticks(100, 0)

    def test_gb_per_sec(self):
        assert ticks.gb_per_sec(2.5) == 2_500_000_000
