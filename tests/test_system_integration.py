"""Integration tests: the full system across access modes."""

import numpy as np
import pytest

from repro import AccessMode, SystemConfig, run_gemm
from repro.core.system import AcceSysSystem
from repro.workloads import GemmWorkload, unpack_c_tiles


class TestSystemConstruction:
    def test_baseline_builds(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        assert system.driver.slot is not None
        assert system.smmu is not None
        assert system.devmem is None

    def test_devmem_builds(self):
        system = AcceSysSystem(SystemConfig.devmem_system())
        assert system.devmem is not None

    def test_bar_assignment_in_mmio_window(self):
        system = AcceSysSystem(SystemConfig.table2_baseline())
        bar0 = system.driver.bar0
        assert system.mmio_range.contains_range(bar0)

    def test_paper_systems_all_build(self):
        for name, config in SystemConfig.paper_systems().items():
            system = AcceSysSystem(config)
            assert system.config.name == name

    def test_no_smmu_config(self):
        config = SystemConfig.table2_baseline(smmu=None)
        system = AcceSysSystem(config)
        assert system.smmu is None
        assert system.page_table is None


class TestGemmAcrossModes:
    def test_dc_runs(self):
        result = run_gemm(SystemConfig.table2_baseline(), 64, 64, 64)
        assert result.ticks > 0
        assert result.table4 is not None

    def test_dm_runs(self):
        config = SystemConfig.table2_baseline(
            access_mode=AccessMode.DIRECT_MEMORY
        )
        result = run_gemm(config, 64, 64, 64)
        assert result.ticks > 0

    def test_devmem_runs(self):
        result = run_gemm(SystemConfig.devmem_system(), 64, 64, 64)
        assert result.ticks > 0
        assert result.table4 is None  # no SMMU in the GEMM path

    def test_devmem_faster_than_slow_pcie(self):
        host = run_gemm(SystemConfig.pcie_2gb(), 128, 128, 128)
        dev = run_gemm(SystemConfig.devmem_system(), 128, 128, 128)
        assert dev.ticks < host.ticks

    def test_pcie_bandwidth_ordering(self):
        t2 = run_gemm(SystemConfig.pcie_2gb(), 128, 128, 128).ticks
        t8 = run_gemm(SystemConfig.pcie_8gb(), 128, 128, 128).ticks
        t64 = run_gemm(SystemConfig.pcie_64gb(), 128, 128, 128).ticks
        assert t2 > t8 >= t64

    def test_delivered_bandwidth_below_link(self):
        config = SystemConfig.pcie_2gb()
        result = run_gemm(config, 128, 128, 128)
        assert result.delivered_bytes_per_sec < config.pcie.effective_bytes_per_sec

    def test_table4_footprint_matches_formula(self):
        """Memory footprint pages = 3 matrices x N^2 x 4B / 4KB."""
        for size, expected_pages in ((64, 12), (128, 48), (256, 192)):
            result = run_gemm(SystemConfig.table2_baseline(), size, size, size)
            assert result.table4["memory_footprint_pages"] == expected_pages

    def test_translations_match_streamed_lines(self):
        """uTLB lookups equal the streamed line count (the paper's
        Table IV identity: translations ~ N^3/128 plus writebacks)."""
        size = 128
        result = run_gemm(SystemConfig.table2_baseline(), size, size, size)
        expected_read_lines = size**3 // 128
        expected_write_lines = size * size * 4 // 64
        assert result.table4["utlb_lookup_times"] == (
            expected_read_lines + expected_write_lines
        )


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("mode", ["dc", "dm", "devmem"])
    def test_gemm_result_exact(self, mode):
        if mode == "devmem":
            config = SystemConfig.devmem_system()
        else:
            config = SystemConfig.table2_baseline(
                access_mode=AccessMode.parse(mode)
            )
        m, k, n = 48, 64, 32
        result = run_gemm(config, m, k, n, functional=True, seed=11)
        workload = GemmWorkload(m, k, n, seed=11)
        a, b = workload.generate()
        np.testing.assert_array_equal(result.c_matrix, workload.reference(a, b))

    def test_functional_operands_land_in_memory(self):
        config = SystemConfig.table2_baseline(functional=True)
        system = AcceSysSystem(config)
        workload = GemmWorkload(32, 32, 32, seed=2)
        a_addr = system.alloc_buffer("A", workload.a_bytes)
        system.alloc_buffer("B", workload.b_bytes)
        system.alloc_buffer("C", workload.c_bytes)
        a, b = workload.generate()
        from repro.core.runner import _write_operands

        _write_operands(system, a_addr, 0, a, b)
        paddr = system.driver.buffer_paddr("A")
        stored = system.host_backing.read(paddr, workload.a_bytes)
        from repro.workloads import pack_a_panels

        np.testing.assert_array_equal(stored, pack_a_panels(a))


class TestCoherence:
    def test_accel_writes_invalidate_cpu_cache(self):
        """DC-mode C writebacks must snoop-invalidate the CPU's L1."""
        config = SystemConfig.table2_baseline()
        system = AcceSysSystem(config)
        workload = GemmWorkload(32, 32, 32)
        a_addr = system.alloc_buffer("A", workload.a_bytes)
        b_addr = system.alloc_buffer("B", workload.b_bytes)
        c_addr = system.alloc_buffer("C", workload.c_bytes)
        c_paddr = system.driver.buffer_paddr("C")
        from repro.sim.transaction import Transaction

        # Warm the CPU L1 with the C buffer region.
        system.l1d.send(
            Transaction.read(c_paddr, 256, source="system.cpu"), lambda t: None
        )
        system.run()
        assert system.l1d.tags.resident_lines > 0

        done = []
        system.driver.launch_gemm(
            32, 32, 32, a_addr, b_addr, c_addr, lambda j, s: done.append(True)
        )
        system.run()
        assert done
        assert system.membus.stats["snoop_invalidations"].value > 0
