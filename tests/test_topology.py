"""Topology descriptions and the compiled switch fabric.

Unit-level coverage: the declarative tree (builders, validation,
canonicalization into cache keys), the arbitrated SwitchLink (round
robin, FIFO ordering, reset identity), and SwitchedPCIeFabric routing
(host path, MMIO, peer-to-peer, wiring errors)."""

import pytest

from repro.core.config import SystemConfig, canonical_value
from repro.interconnect.pcie.fabric import PCIeFabric
from repro.interconnect.pcie.link import PCIeConfig
from repro.memory.addr_range import AddrRange
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction
from repro.topology import (
    EndpointDesc,
    SwitchDesc,
    SwitchedPCIeFabric,
    SwitchLink,
    TopologyDesc,
    balanced_tree,
    flat_topology,
    tiered_topology,
)


class TestDescription:
    def test_flat_topology_shape(self):
        topo = flat_topology(4)
        assert topo.num_endpoints == 4
        assert topo.num_switches == 1
        assert topo.depth == 1

    def test_tiered_topology_depth(self):
        topo = tiered_topology(2, 3)
        assert topo.num_endpoints == 2
        assert topo.num_switches == 3
        assert topo.depth == 3

    def test_balanced_tree(self):
        topo = balanced_tree(8, fanout=4)
        assert topo.num_endpoints == 8
        assert topo.depth == 2
        assert topo.num_switches == 3  # two leaves tiers + one root

    def test_balanced_tree_single_endpoint_gets_a_switch(self):
        topo = balanced_tree(1)
        assert topo.num_endpoints == 1
        assert topo.num_switches == 1

    def test_endpoint_order_is_depth_first(self):
        named = TopologyDesc(root=SwitchDesc(children=(
            EndpointDesc(name="a"),
            SwitchDesc(children=(EndpointDesc(name="b"),
                                 EndpointDesc(name="c"))),
            EndpointDesc(name="d"),
        )))
        assert [e.name for e in named.endpoints()] == ["a", "b", "c", "d"]

    def test_empty_switch_rejected(self):
        with pytest.raises(ValueError):
            SwitchDesc(children=())

    def test_bad_child_type_rejected(self):
        with pytest.raises(TypeError):
            SwitchDesc(children=("not-a-node",))

    def test_builders_reject_bad_counts(self):
        with pytest.raises(ValueError):
            flat_topology(0)
        with pytest.raises(ValueError):
            tiered_topology(2, 0)
        with pytest.raises(ValueError):
            balanced_tree(4, fanout=1)


class TestConfigIntegration:
    def test_topology_canonicalizes(self):
        value = canonical_value(tiered_topology(2, 2))
        assert value["__type__"] == "TopologyDesc"
        # Nested children survive as plain JSON-safe structures.
        import json
        json.dumps(value)

    def test_topology_changes_stable_hash(self):
        base = SystemConfig.pcie_2gb(num_accelerators=2)
        explicit = base.with_topology(tiered_topology(2, 2))
        assert base.stable_hash() != explicit.stable_hash()

    def test_with_topology_syncs_device_count(self):
        config = SystemConfig.pcie_2gb().with_topology(flat_topology(3))
        assert config.num_accelerators == 3

    def test_effective_topology_default(self):
        assert SystemConfig.pcie_2gb().effective_topology() is None
        multi = SystemConfig.pcie_2gb(num_accelerators=2)
        assert multi.effective_topology().num_endpoints == 2
        # CXL keeps the directly-attached port even for clusters.
        cxl = SystemConfig.cxl_host(num_accelerators=2)
        assert cxl.effective_topology() is None

    def test_mismatched_topology_rejected(self):
        from repro.core.system import AcceSysSystem

        config = SystemConfig.pcie_2gb(
            num_accelerators=3, topology=flat_topology(2)
        )
        with pytest.raises(ValueError, match="2 endpoint"):
            AcceSysSystem(config)

    def test_cxl_topology_rejected(self):
        from repro.core.system import AcceSysSystem

        config = SystemConfig.cxl_host(
            num_accelerators=2, topology=flat_topology(2)
        )
        with pytest.raises(ValueError, match="CXL"):
            AcceSysSystem(config)


class TestSwitchLink:
    def make_link(self, ports=2, **kw):
        sim = Simulator()
        link = SwitchLink(sim, "link", PCIeConfig(), num_ports=ports,
                          hop_latency=ns(50), tlp_occupancy=ns(2), **kw)
        return sim, link

    def test_round_robin_is_fair(self):
        sim, link = self.make_link(ports=2)
        arrivals = {0: [], 1: []}
        for _ in range(8):
            for port in (0, 1):
                txn = Transaction.read(0, 1024)
                link.submit(port, txn, 1024,
                            lambda t, p=port: arrivals[p].append(sim.now))
        sim.run()
        assert len(arrivals[0]) == len(arrivals[1]) == 8
        # Grants alternate, so neither port's last arrival lags the
        # other's by more than one train.
        gap = abs(arrivals[0][-1] - arrivals[1][-1])
        span = max(arrivals[0][-1], arrivals[1][-1]) - min(
            arrivals[0][0], arrivals[1][0]
        )
        assert gap < span / 4

    def test_arrivals_are_fifo(self):
        sim, link = self.make_link(ports=1)
        order = []
        for i in range(4):
            link.submit(0, Transaction.read(0, 64 * (i + 1)), 64 * (i + 1),
                        lambda t, i=i: order.append((i, sim.now)))
        sim.run()
        assert [i for i, _ in order] == [0, 1, 2, 3]
        ticks = [at for _, at in order]
        assert ticks == sorted(ticks)

    def test_busy_wire_delays_second_train(self):
        sim, link = self.make_link(ports=1)
        arrivals = []
        for _ in range(2):
            link.submit(0, Transaction.read(0, 4096), 4096,
                        lambda t: arrivals.append(sim.now))
        sim.run()
        assert arrivals[1] > arrivals[0]

    def test_port_out_of_range(self):
        _sim, link = self.make_link(ports=2)
        with pytest.raises(ValueError, match="port 2"):
            link.submit(2, Transaction.read(0, 64), 64, lambda t: None)

    def test_reset_rerun_identity(self):
        sim, link = self.make_link(ports=2)

        def drive():
            arrivals = []
            for i in range(6):
                link.submit(i % 2, Transaction.read(0, 512), 512,
                            lambda t: arrivals.append(sim.now))
            sim.run()
            return arrivals, dict(link.stats.flatten())

        first = drive()
        sim.reset()
        for obj in sim.objects:
            obj.reset_state()
        second = drive()
        assert first == second


def make_switched(n=2, topology=None, host_latency=ns(100)):
    sim = Simulator()
    topo = topology or flat_topology(n)
    host = FixedLatencyTarget(sim, "host", latency=host_latency)
    fabric = SwitchedPCIeFabric(sim, "pcie", PCIeConfig(), topo, host)
    return sim, fabric, host


class TestSwitchedFabric:
    def test_compiles_links_for_every_wire(self):
        _sim, fabric, _host = make_switched(4)
        # Root switch + 4 endpoints = 5 nodes, an up/down pair each.
        assert len(fabric.links()) == 10
        assert fabric.up.num_ports == 4  # shared upstream, one per device

    def test_device_read_reaches_host_and_returns(self):
        sim, fabric, host = make_switched(2)
        done = {}
        fabric.device_access(Transaction.read(0, 256),
                             lambda t: done.setdefault("at", sim.now),
                             endpoint=1)
        sim.run()
        assert host.stats["transactions"].value == 1
        assert done["at"] > 2 * ns(200)  # both directions, rc + switch

    def test_deeper_tiers_cost_more(self):
        def read_time(topology):
            sim, fabric, _host = make_switched(topology=topology)
            done = {}
            fabric.device_access(Transaction.read(0, 256),
                                 lambda t: done.setdefault("at", sim.now))
            sim.run()
            return done["at"]

        shallow = read_time(tiered_topology(1, 1))
        deep = read_time(tiered_topology(1, 3))
        assert deep > shallow

    def test_unwired_host_target_raises_with_hint(self):
        sim = Simulator()
        fabric = SwitchedPCIeFabric(sim, "pcie", PCIeConfig(),
                                    flat_topology(2))
        with pytest.raises(RuntimeError) as err:
            fabric.device_access(Transaction.read(0, 64), lambda t: None)
        assert "pcie" in str(err.value)
        assert "set_host_target" in str(err.value)

    def test_classic_fabric_unwired_error_names_component(self):
        sim = Simulator()
        fabric = PCIeFabric(sim, "system.pcie", PCIeConfig())
        for txn in (Transaction.read(0, 64), Transaction.write(0, 64)):
            with pytest.raises(RuntimeError) as err:
                fabric.device_access(txn, lambda t: None)
            assert "system.pcie" in str(err.value)
            assert "set_host_target" in str(err.value)

    def test_window_registration_validates(self):
        _sim, fabric, _host = make_switched(2)
        fabric.register_endpoint_window(0, AddrRange(0x1000, 0x2000))
        with pytest.raises(ValueError, match="overlaps"):
            fabric.register_endpoint_window(1, AddrRange(0x1800, 0x2800))
        with pytest.raises(ValueError, match="out of range"):
            fabric.register_endpoint_window(5, AddrRange(0x4000, 0x5000))

    def test_p2p_write_skips_root_complex(self):
        sim, fabric, host = make_switched(2)
        peer = FixedLatencyTarget(sim, "peer", latency=ns(5))
        fabric.register_endpoint_window(1, AddrRange(0x1000, 0x100000), peer)
        done = {}
        fabric.device_access(Transaction.write(0x1000, 4096),
                             lambda t: done.setdefault("at", sim.now),
                             endpoint=0)
        sim.run()
        assert peer.stats["transactions"].value == 1
        assert host.stats["transactions"].value == 0
        assert fabric.up.stats["tlps"].value == 0
        assert fabric.down.stats["tlps"].value == 0
        assert fabric.stats["p2p_ops"].value == 1
        assert fabric.stats["p2p_bytes"].value == 4096

    def test_p2p_read_round_trip(self):
        sim, fabric, _host = make_switched(2)
        peer = FixedLatencyTarget(sim, "peer", latency=ns(5))
        fabric.register_endpoint_window(1, AddrRange(0x1000, 0x100000), peer)
        done = {}
        fabric.device_access(Transaction.read(0x1000, 4096),
                             lambda t: done.setdefault("at", sim.now),
                             endpoint=0)
        sim.run()
        assert peer.stats["transactions"].value == 1
        assert done["at"] > 2 * ns(50)  # switch crossed both ways

    def test_p2p_without_target_raises(self):
        sim, fabric, _host = make_switched(2)
        fabric.register_endpoint_window(1, AddrRange(0x1000, 0x100000))
        with pytest.raises(RuntimeError, match="delivery target"):
            fabric.device_access(Transaction.write(0x1000, 64),
                                 lambda t: None, endpoint=0)

    def test_own_window_loopback_raises_clearly(self):
        """A device touching its *own* window is neither peer traffic nor
        host traffic: it errors at submit time instead of surfacing as an
        SMMU fault on a BAR address deep in the host path."""
        sim, fabric, host = make_switched(2)
        mine = FixedLatencyTarget(sim, "mine", latency=ns(5))
        fabric.register_endpoint_window(0, AddrRange(0x1000, 0x100000), mine)
        with pytest.raises(RuntimeError, match="own[ ]window"):
            fabric.device_access(Transaction.write(0x1000, 64),
                                 lambda t: None, endpoint=0)
        assert fabric.stats["p2p_ops"].value == 0
        assert host.stats["transactions"].value == 0

    def test_lca_switch_charged_once_on_peer_route(self):
        """The turn-around switch of a peer route traverses once: raising
        its latency by D delays a P2P write by D, not 2D."""
        from repro.topology import SwitchDesc, EndpointDesc, TopologyDesc

        def p2p_time(extra):
            topo = TopologyDesc(root=SwitchDesc(
                children=(EndpointDesc(), EndpointDesc()),
                latency=ns(50) + extra,
            ))
            sim, fabric, _host = make_switched(topology=topo)
            peer = FixedLatencyTarget(sim, "peer", latency=ns(5))
            fabric.register_endpoint_window(
                1, AddrRange(0x1000, 0x100000), peer
            )
            done = {}
            fabric.device_access(Transaction.write(0x1000, 4096),
                                 lambda t: done.setdefault("at", sim.now),
                                 endpoint=0)
            sim.run()
            return done["at"]

        delta = ns(1_000_000)
        assert p2p_time(delta) - p2p_time(0) == delta

    def test_host_access_routes_by_address(self):
        sim, fabric, _host = make_switched(2)
        regs = FixedLatencyTarget(sim, "regs1", latency=ns(5))
        fabric.register_endpoint_window(1, AddrRange(0x2000, 0x3000), regs)
        done = {}
        fabric.host_access(Transaction.read(0x2000, 4), regs,
                           lambda t: done.setdefault("at", sim.now))
        sim.run()
        assert regs.stats["transactions"].value == 1
        assert done["at"] > 2 * ns(200)  # down + up, rc + switch each way

    def test_mmio_contention_on_shared_downlink(self):
        """Concurrent MMIO to both endpoints shares the root-complex
        downlink: the second access finishes after the first."""
        sim, fabric, _host = make_switched(2)
        targets = []
        done = []
        for i in range(2):
            target = FixedLatencyTarget(sim, f"regs{i}", latency=ns(5))
            base = 0x2000 + i * 0x1000
            fabric.register_endpoint_window(i, AddrRange(base, base + 0x1000),
                                            target)
            targets.append((target, base))
        for target, base in targets:
            fabric.host_access(Transaction.write(base, 4096), target,
                               lambda t: done.append(sim.now))
        sim.run()
        assert len(done) == 2
        assert done[1] > done[0]
