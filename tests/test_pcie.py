"""Unit and property tests for the PCIe model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.pcie import (
    PCIE_GENERATIONS,
    PCIeChannel,
    PCIeConfig,
    PCIeFabric,
    TLPParams,
)
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns, serialization_ticks, ticks_to_seconds
from repro.sim.transaction import Transaction

GB = 10**9


class TestTLPParams:
    def test_num_tlps(self):
        tlp = TLPParams(max_payload=256)
        assert tlp.num_tlps(0) == 1      # header-only request
        assert tlp.num_tlps(256) == 1
        assert tlp.num_tlps(257) == 2
        assert tlp.num_tlps(4096) == 16

    def test_wire_bytes(self):
        tlp = TLPParams(max_payload=256, header_bytes=24)
        assert tlp.wire_bytes(0) == 24
        assert tlp.wire_bytes(512) == 512 + 2 * 24

    def test_efficiency_improves_with_payload(self):
        tlp = TLPParams(max_payload=4096)
        assert tlp.efficiency(64) < tlp.efficiency(256) < tlp.efficiency(4096)

    def test_tlp_wire_bytes_caps_at_mps(self):
        tlp = TLPParams(max_payload=256, header_bytes=24)
        assert tlp.tlp_wire_bytes(4096) == 256 + 24
        assert tlp.tlp_wire_bytes(100) == 100 + 24

    def test_validation(self):
        with pytest.raises(ValueError):
            TLPParams(max_payload=0)
        with pytest.raises(ValueError):
            TLPParams(header_bytes=0)

    @given(payload=st.integers(min_value=1, max_value=1 << 20))
    def test_fragmentation_conserves_payload(self, payload):
        tlp = TLPParams(max_payload=256, header_bytes=24)
        n = tlp.num_tlps(payload)
        assert (n - 1) * 256 < payload <= n * 256
        assert tlp.wire_bytes(payload) == payload + n * 24


class TestPCIeConfig:
    def test_table2_default(self):
        cfg = PCIeConfig()
        assert cfg.lanes == 4
        assert cfg.rc_latency == ns(150)
        assert cfg.switch_latency == ns(50)
        # 4 lanes x 5 Gb/s x 8/10 = 2 GB/s effective.
        assert cfg.effective_bytes_per_sec == 2 * GB

    def test_generation_presets(self):
        gen3 = PCIeConfig.from_generation(3, lanes=16)
        assert gen3.lane_gbps == 8.0
        assert gen3.encoding == (128, 130)
        # x16 gen3 ~ 15.75 GB/s
        assert gen3.effective_bytes_per_sec == pytest.approx(15.75 * GB, rel=0.01)

    def test_all_generations_monotonic(self):
        rates = [
            PCIeConfig.from_generation(g).effective_bytes_per_sec
            for g in sorted(PCIE_GENERATIONS)
        ]
        assert rates == sorted(rates)

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            PCIeConfig(lanes=3)

    def test_invalid_generation(self):
        with pytest.raises(ValueError):
            PCIeConfig.from_generation(7)

    def test_describe(self):
        assert "x4" in PCIeConfig().describe()


class TestPCIeChannel:
    def make_channel(self, **kw):
        sim = Simulator()
        cfg = PCIeConfig(**kw)
        channel = PCIeChannel(sim, "ch", cfg)
        return sim, channel

    def test_single_tlp_latency(self):
        sim, channel = self.make_channel()
        done = []
        txn = Transaction.read(0, 64)
        channel.deliver(txn, 64, lambda t: done.append(sim.now))
        sim.run()
        bw = channel.config.effective_bytes_per_sec
        wire = serialization_ticks(64 + 24, bw)
        # occupancy + (switch latency + rc latency) + 2 store-and-forward
        expected = wire + ns(200) + 2 * wire
        assert done[0] == expected

    def test_bandwidth_scales_with_lanes(self):
        results = {}
        for lanes in (2, 4, 8, 16):
            sim, channel = self.make_channel(lanes=lanes)
            done = []
            for i in range(32):
                channel.deliver(
                    Transaction.read(i * 4096, 4096), 4096,
                    lambda t: done.append(sim.now),
                )
            sim.run()
            results[lanes] = max(done)
        assert results[2] > results[4] > results[8] > results[16]

    def test_header_only_request_is_fast(self):
        sim, channel = self.make_channel()
        done = []
        channel.deliver(Transaction.read(0, 4096), 0, lambda t: done.append(sim.now))
        sim.run()
        # A header-only TLP should cost far less than the payload would.
        bw = channel.config.effective_bytes_per_sec
        assert done[0] < serialization_ticks(4096, bw) + ns(250)

    def test_packet_size_override(self):
        sim, channel = self.make_channel()
        txn = Transaction.read(0, 4096)
        txn.packet_size = 64
        channel.deliver(txn, 4096, lambda t: None)
        sim.run()
        assert channel.stats["tlps"].value == 64

    def test_stats_accumulate(self):
        sim, channel = self.make_channel()
        channel.deliver(Transaction.read(0, 512), 512, lambda t: None)
        sim.run()
        assert channel.stats["payload_bytes"].value == 512
        assert channel.stats["tlps"].value == 2
        assert channel.stats["wire_bytes"].value == 512 + 2 * 24


class TestPCIeFabric:
    def make_fabric(self, host_latency=ns(100), **kw):
        sim = Simulator()
        cfg = PCIeConfig(**kw)
        host = FixedLatencyTarget(sim, "host", latency=host_latency)
        fabric = PCIeFabric(sim, "pcie", cfg, host)
        return sim, fabric, host

    def test_read_round_trip_slower_than_write(self):
        sim, fabric, _ = self.make_fabric()
        done = {}
        fabric.device_read(Transaction.read(0, 256), lambda t: done.setdefault("r", sim.now))
        sim.run()
        read_time = done["r"]

        sim2, fabric2, _ = self.make_fabric()
        done2 = {}
        fabric2.device_write(
            Transaction.write(0, 256), lambda t: done2.setdefault("w", sim2.now)
        )
        sim2.run()
        write_time = done2["w"]
        # Reads pay both directions plus host service; posted writes only up.
        assert read_time > write_time

    def test_read_delivers_through_host(self):
        sim, fabric, host = self.make_fabric()
        fabric.device_read(Transaction.read(0, 256), lambda t: None)
        sim.run()
        assert host.stats["transactions"].value == 1
        assert fabric.up.stats["tlps"].value == 1   # header-only request
        assert fabric.down.stats["tlps"].value == 1  # one 256B completion

    def test_device_access_dispatch(self):
        sim, fabric, host = self.make_fabric()
        fabric.device_access(Transaction.read(0, 64), lambda t: None)
        fabric.device_access(Transaction.write(0, 64), lambda t: None)
        sim.run()
        assert fabric.stats["device_reads"].value == 1
        assert fabric.stats["device_writes"].value == 1

    def test_host_mmio_write(self):
        sim, fabric, _ = self.make_fabric()
        device = FixedLatencyTarget(sim, "dev", latency=ns(5))
        done = []
        fabric.host_access(
            Transaction.write(0x1000, 4), device, lambda t: done.append(sim.now)
        )
        sim.run()
        assert device.stats["transactions"].value == 1
        assert done and done[0] > ns(200)  # at least RC+switch latency

    def test_host_mmio_read_round_trip(self):
        sim, fabric, _ = self.make_fabric()
        device = FixedLatencyTarget(sim, "dev", latency=ns(5))
        done = []
        fabric.host_access(
            Transaction.read(0x1000, 4), device, lambda t: done.append(sim.now)
        )
        sim.run()
        # Down request + device + up completion: at least 2x (RC+switch).
        assert done[0] > 2 * ns(200)

    def test_unconnected_host_raises(self):
        sim = Simulator()
        fabric = PCIeFabric(sim, "pcie", PCIeConfig())
        with pytest.raises(RuntimeError):
            fabric.device_read(Transaction.read(0, 64), lambda t: None)


class TestThroughputProperties:
    @settings(max_examples=10, deadline=None)
    @given(mps=st.sampled_from([128, 256, 512, 1024]))
    def test_sustained_bandwidth_below_effective(self, mps):
        sim = Simulator()
        cfg = PCIeConfig(lanes=16, lane_gbps=16.0, encoding=(128, 130),
                         tlp=TLPParams(max_payload=mps))
        channel = PCIeChannel(sim, "ch", cfg)
        total = 0
        for i in range(64):
            channel.deliver(Transaction.read(i * 4096, 4096), 4096, lambda t: None)
            total += 4096
        sim.run()
        achieved = total / ticks_to_seconds(sim.now)
        assert achieved < cfg.effective_bytes_per_sec

    @settings(max_examples=10, deadline=None)
    @given(
        lanes=st.sampled_from([2, 4, 8, 16]),
        gbps=st.sampled_from([2.0, 8.0, 32.0]),
    )
    def test_more_bandwidth_never_slower(self, lanes, gbps):
        def run(lane_count, rate):
            sim = Simulator()
            cfg = PCIeConfig(lanes=lane_count, lane_gbps=rate)
            channel = PCIeChannel(sim, "ch", cfg)
            for i in range(16):
                channel.deliver(Transaction.read(i * 4096, 4096), 4096, lambda t: None)
            sim.run()
            return sim.now

        base = run(lanes, gbps)
        faster = run(lanes, gbps * 2)
        assert faster <= base
