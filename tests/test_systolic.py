"""Unit tests for the systolic array timing and functional models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.systolic import SystolicArray, SystolicParams
from repro.sim.eventq import Simulator
from repro.sim.ticks import ns


def make_array(**kw):
    sim = Simulator()
    overrides = kw.pop("compute_ticks_override", None)
    params = SystolicParams(**kw)
    return sim, SystolicArray(sim, "sa", params, overrides)


class TestParams:
    def test_defaults_match_paper(self):
        params = SystolicParams()
        assert params.rows == 16 and params.cols == 16
        assert params.macs == 256
        assert params.element_bytes == 4

    def test_tile_cycles_ingest_bound(self):
        # 1 element/cycle ingest: 16*k cycles dominate k+32.
        params = SystolicParams(ingest_elems=1)
        assert params.tile_cycles(1024) == 16 * 1024

    def test_tile_cycles_pipeline_bound(self):
        # Wide ingest: the MAC pipeline dominates.
        params = SystolicParams(ingest_elems=16)
        assert params.tile_cycles(1024) == 1024 + 32

    def test_ingest_bandwidth(self):
        params = SystolicParams(ingest_elems=1, freq_hz=1e9)
        # 1 elem x 4 B x 1 GHz x 2 panels = 8 GB/s.
        assert params.ingest_bytes_per_sec == pytest.approx(8e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicParams(rows=0)
        with pytest.raises(ValueError):
            SystolicParams(ingest_elems=0)
        with pytest.raises(ValueError):
            SystolicParams(element_bytes=3)
        with pytest.raises(ValueError):
            SystolicParams().tile_cycles(0)


class TestTiming:
    def test_back_to_back_tiles_queue(self):
        sim, sa = make_array(ingest_elems=16)
        finishes = []
        for _ in range(3):
            sa.compute_tile(64, lambda: finishes.append(sim.now))
        sim.run()
        tile_ticks = sa.tile_ticks(64)
        assert finishes == [tile_ticks, 2 * tile_ticks, 3 * tile_ticks]

    def test_override_pins_tile_time(self):
        sim, sa = make_array(compute_ticks_override=ns(1500))
        done = []
        sa.compute_tile(4096, lambda: done.append(sim.now))
        sim.run()
        assert done == [ns(1500)]

    def test_idle_tracking(self):
        sim, sa = make_array(ingest_elems=16)
        sa.compute_tile(64, lambda: None)
        sim.run()
        gap = ns(500)
        sim.schedule(gap, lambda: sa.compute_tile(64, lambda: None))
        sim.run()
        assert sa.stats["idle_ticks"].value == gap

    def test_stats(self):
        sim, sa = make_array()
        sa.compute_tile(128, lambda: None)
        sim.run()
        assert sa.stats["tiles"].value == 1
        assert sa.stats["macs"].value == 16 * 16 * 128

    def test_describe(self):
        _, sa = make_array()
        assert "16x16" in sa.describe()


class TestFunctional:
    def test_known_product(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.int32)
        b = np.array([[5, 6], [7, 8]], dtype=np.int32)
        np.testing.assert_array_equal(
            SystolicArray.multiply(a, b), a @ b
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SystolicArray.multiply(
                np.zeros((2, 3), dtype=np.int32), np.zeros((2, 3), dtype=np.int32)
            )

    def test_accumulation_wraps_like_int32(self):
        big = np.full((1, 1), 2**20, dtype=np.int32)
        result = SystolicArray.multiply(big, big)
        expected = np.int64(2**40) & 0xFFFFFFFF
        assert result[0, 0] == np.int64(result[0, 0]) & 0xFFFFFFFF

    @settings(max_examples=25)
    @given(
        m=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_matches_numpy_random(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-100, 100, size=(m, k), dtype=np.int32)
        b = rng.integers(-100, 100, size=(k, n), dtype=np.int32)
        np.testing.assert_array_equal(
            SystolicArray.multiply(a, b),
            (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32),
        )
