"""Intra-point PDES: event domains, lockstep determinism, partitioning.

Covers the :class:`~repro.sim.eventq.ParallelSimulator` kernel (global
event order, cross-domain channels, quantum rounds, threaded mode), the
:func:`~repro.topology.fabric.plan_domains` partition planner and its
lookahead refusals, the sweep-layer ``--domains`` plumbing, the reset
behaviour of the simulator's diagnostic counters, and -- the acceptance
bar of the refactor -- domain-count invariance: the same multi-device
point simulated with 1, 2 and 4 domains produces bit-identical ticks,
event counts and stat snapshots.  docs/PARALLEL.md explains the model.
"""

import dataclasses

import pytest

from repro.core.config import SystemConfig
from repro.core.runner import MultiGemmRunner, PeerTransferRunner
from repro.core.system import AcceSysSystem
from repro.interconnect.pcie.link import PCIeConfig
from repro.sim.eventq import ParallelSimulator, Simulator
from repro.sweep.spec import SweepPoint, SweepSpec, apply_domains, build_sweep
from repro.topology.description import (
    EndpointDesc,
    SwitchDesc,
    TopologyDesc,
    flat_topology,
    tiered_topology,
)
from repro.topology.fabric import plan_domains, plan_for_config


# ----------------------------------------------------------------------
# ParallelSimulator kernel
# ----------------------------------------------------------------------
class TestParallelSimulator:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelSimulator(0)
        with pytest.raises(ValueError):
            ParallelSimulator(2, quantum=0)

    def test_execution_order_matches_classic(self):
        """The lockstep merge replays the classic global event order."""

        def drive(sim, to_domain):
            order = []

            def make(tag, delay):
                def fire():
                    order.append((tag, sim.now))
                    if sim.now < 400:
                        sim.schedule(delay, fire)

                return fire

            for i in range(6):
                to_domain(i % 3, 1 + i * 3, make(i, 5 + i))
            sim.run()
            return order

        classic = Simulator()
        reference = drive(classic, lambda d, t, fn: classic.schedule(t, fn))
        parallel = ParallelSimulator(3, quantum=7)
        got = drive(parallel, parallel.schedule_in)
        assert got == reference
        assert parallel.events_executed == classic.events_executed
        assert parallel.now == classic.now

    def test_schedule_runs_in_current_domain(self):
        sim = ParallelSimulator(2, quantum=10)
        seen = []

        def inner():
            seen.append(sim._ctx())

        # An event in domain 1 schedules a follow-up without naming a
        # domain: it must stay in domain 1 (domain affinity).
        sim.schedule_in(1, 5, lambda: sim.schedule(3, inner))
        sim.run()
        assert seen == [1]
        assert sim.domains[1].executed == 2
        assert sim.domains[0].executed == 0

    def test_post_at_crosses_at_the_barrier(self):
        sim = ParallelSimulator(2, quantum=10)
        seen = []

        def host():  # domain 0, tick 2
            sim.post_at(1, 15, lambda: seen.append(("ep", sim.now)))

        sim.schedule_in(0, 2, host)
        sim.run()
        assert seen == [("ep", 15)]
        assert sim.cross_posts == 1
        assert sim.domains[1].executed == 1

    def test_post_ordering_is_deterministic(self):
        """Same-tick posts deliver in global posting order -- exactly
        the tie-break a classic single-queue run would apply if each
        post had been a ``schedule_at`` by the executing event."""
        sim = ParallelSimulator(3, quantum=10)
        seen = []
        # Domain 2's event executes first (tick 1 < tick 2), so its
        # post carries the earlier global sequence number and wins the
        # same-tick tie at delivery.
        sim.schedule_in(2, 1, lambda: sim.post_at(0, 20, lambda: seen.append("from2")))
        sim.schedule_in(1, 2, lambda: sim.post_at(0, 20, lambda: seen.append("from1")))
        sim.run()
        assert seen == ["from2", "from1"]

    def test_post_in_the_past_rejected(self):
        sim = ParallelSimulator(2)
        sim.schedule_in(0, 5, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="cannot post"):
            sim.post_at(1, 3, lambda: None)

    def test_lookahead_violation_raises(self):
        """A post inside the target's already-executed window is a
        causality error, reported against the quantum."""
        sim = ParallelSimulator(2, quantum=10)
        sim.schedule_in(1, 9, lambda: None)
        # Domain 0 at tick 2 posts for tick 5; domain 1 reaches tick 9
        # within the same round, so the barrier must refuse delivery.
        sim.schedule_in(0, 2, lambda: sim.post_at(1, 5, lambda: None, name="bad"))
        with pytest.raises(RuntimeError, match="lookahead"):
            sim.run()

    def test_until_and_max_events(self):
        sim = ParallelSimulator(2, quantum=4)
        fired = []
        for tick in (1, 5, 9, 13):
            sim.schedule_in(tick % 2, tick, lambda t=tick: fired.append(t))
        sim.run(until=9)
        assert fired == [1, 5, 9]
        assert sim.now == 9
        assert sim.pending_events == 1

        sim2 = ParallelSimulator(2, quantum=4)
        for tick in (1, 5, 9):
            sim2.schedule_in(tick % 2, tick, lambda t=tick: fired.append(t))
        executed = sim2.run(max_events=2)
        assert sim2.events_executed == 2
        assert executed == sim2.now

    def test_sync_rounds_counted(self):
        sim = ParallelSimulator(2, quantum=5)
        sim.schedule_in(0, 1, lambda: None)
        sim.schedule_in(1, 23, lambda: None)
        sim.run()
        # Rounds only open where events exist (idle quanta are skipped),
        # so two isolated ticks cost two rounds.
        assert sim.sync_rounds == 2

    def test_cancellation_visible_globally(self):
        sim = ParallelSimulator(2, quantum=10)
        victim = sim.schedule_in(1, 5, lambda: pytest.fail("cancelled event ran"))
        victim.cancel()
        sim.schedule_in(0, 6, lambda: None)
        sim.run()
        assert sim.events_skipped == 1
        assert sim.events_executed == 1

    def test_reset_restores_construction_state(self):
        sim = ParallelSimulator(3, quantum=10)
        sim.schedule_in(1, 4, lambda: sim.post_at(2, 30, lambda: None))
        sim.run()
        assert sim.events_executed == 2
        sim.reset()
        assert sim.now == 0
        assert sim.pending_events == 0
        assert sim.events_executed == 0
        assert sim.cross_posts == 0
        assert sim.sync_rounds == 0
        assert all(dom.now == 0 and dom.executed == 0 for dom in sim.domains)
        # And the reset simulator still runs.
        sim.schedule_in(2, 7, lambda: None)
        sim.run()
        assert sim.events_executed == 1

    def test_assign_domain_validates_index(self):
        sim = ParallelSimulator(2)

        class Obj:
            domain = 0

        with pytest.raises(ValueError, match="domain"):
            sim.assign_domain(Obj(), 2)

    def test_run_until_idle(self):
        sim = ParallelSimulator(2, quantum=10)
        state = {"left": 5}

        def fire():
            state["left"] -= 1
            if state["left"] > 0:
                sim.schedule(3, fire)

        sim.schedule_in(1, 1, fire)
        sim.run_until_idle(lambda: state["left"] == 0)
        assert state["left"] == 0

    def test_threaded_matches_lockstep(self):
        """Domain-confined programs drain identically with worker
        threads and with the serial lockstep merge."""

        def build(threads):
            sim = ParallelSimulator(3, quantum=16, threads=threads)

            def make(delay):
                def fire():
                    if sim.now < 3000:
                        sim.schedule(delay, fire)

                return fire

            for dom in range(3):
                for i in range(4):
                    sim.schedule_in(dom, 1 + i, make(5 + dom + i))
            sim.run()
            return sim

        serial = build(False)
        threaded = build(True)
        assert threaded.events_executed == serial.events_executed
        assert [d.executed for d in threaded.domains] == [
            d.executed for d in serial.domains
        ]
        assert [d.now for d in threaded.domains] == [
            d.now for d in serial.domains
        ]


# ----------------------------------------------------------------------
# Satellite: diagnostic counters cleared by reset
# ----------------------------------------------------------------------
class TestDiagnosticsReset:
    def test_freelist_high_water_tracked_and_cleared(self):
        sim = Simulator()
        for i in range(32):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.freelist_high_water > 0
        first = sim.diagnostics()
        sim.reset()
        assert sim.freelist_high_water == 0
        assert sim.events_skipped == 0
        assert sim.diagnostics()["freelist_high_water"] == 0
        # A rerun reports per-run numbers, not cumulative ones.
        for i in range(32):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.diagnostics() == first

    def test_events_skipped_cleared_by_reset(self):
        sim = Simulator()
        sim.schedule(1, lambda: None).cancel()
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_skipped == 1
        sim.reset()
        assert sim.events_skipped == 0

    def test_parallel_diagnostics_keys(self):
        sim = ParallelSimulator(2)
        diag = sim.diagnostics()
        assert set(diag) == {
            "events_executed",
            "events_skipped",
            "freelist_high_water",
            "sync_rounds",
            "cross_posts",
        }


# ----------------------------------------------------------------------
# Partition planning
# ----------------------------------------------------------------------
class TestDomainPlanning:
    def test_flat_partition_blocks(self):
        plan = plan_domains(flat_topology(4), PCIeConfig(), 3)
        assert plan.endpoint_domain == (1, 1, 2, 2)
        plan = plan_domains(flat_topology(4), PCIeConfig(), 5)
        assert plan.endpoint_domain == (1, 2, 3, 4)

    def test_quantum_is_min_hop_latency(self):
        config = PCIeConfig()
        plan = plan_domains(tiered_topology(4, depth=2), config, 3)
        assert plan.quantum == min(config.rc_latency, config.switch_latency)
        # A slower bespoke switch does not lower the quantum; a faster
        # one does.
        fast = TopologyDesc(root=SwitchDesc(
            children=(EndpointDesc(), EndpointDesc()), latency=7,
        ))
        assert plan_domains(fast, config, 2).quantum == 7

    def test_more_workers_than_endpoints_refused(self):
        with pytest.raises(ValueError, match="effective_domains"):
            plan_domains(flat_topology(2), PCIeConfig(), 4)

    def test_zero_latency_root_complex_refused_by_name(self):
        with pytest.raises(ValueError, match="root complex"):
            plan_domains(flat_topology(2), PCIeConfig(rc_latency=0), 2)

    def test_zero_latency_switch_refused_by_name(self):
        topo = TopologyDesc(root=SwitchDesc(children=(
            SwitchDesc(children=(EndpointDesc(),), latency=0, name="leafsw"),
            EndpointDesc(),
        )))
        with pytest.raises(ValueError, match="leafsw"):
            plan_domains(topo, PCIeConfig(), 2)

    def test_single_domain_never_refuses(self):
        plan = plan_domains(flat_topology(2), PCIeConfig(rc_latency=0), 1)
        assert plan.domains == 1
        assert plan.endpoint_domain == (0, 0)

    def test_effective_domains_clamps(self):
        config = SystemConfig.pcie_2gb(num_accelerators=2).with_domains(16)
        assert config.effective_domains() == 3
        assert SystemConfig.pcie_8gb().with_domains(4).effective_domains() == 1
        assert SystemConfig.pcie_2gb(num_accelerators=4).effective_domains() == 1

    def test_with_domains_validation(self):
        with pytest.raises(ValueError):
            SystemConfig.pcie_8gb().with_domains(0)

    def test_plan_for_config(self):
        assert plan_for_config(SystemConfig.pcie_8gb().with_domains(4)) is None
        config = SystemConfig.pcie_2gb(num_accelerators=4).with_domains(3)
        plan = plan_for_config(config)
        assert plan is not None
        assert plan.domains == 3
        assert len(plan.endpoint_domain) == 4

    def test_domains_in_canonical_form(self):
        base = SystemConfig.pcie_2gb(num_accelerators=2)
        assert base.stable_hash() != base.with_domains(2).stable_hash()
        assert base.with_domains(2).to_canonical()["domains"] == 2


# ----------------------------------------------------------------------
# Sweep-layer plumbing
# ----------------------------------------------------------------------
class TestApplyDomains:
    def test_apply_domains_rewrites_points(self):
        spec = build_sweep("topo-endpoint-scaling", size=32)
        applied = apply_domains(spec, 4)
        assert applied is not spec
        assert all(p.config.domains == 4 for p in applied.points)
        assert [p.key for p in applied.points] == [p.key for p in spec.points]
        # Identity cases return the spec untouched.
        assert apply_domains(spec, None) is spec
        assert apply_domains(spec, 1) is spec

    def test_apply_domains_names_offending_point(self):
        bad = dataclasses.replace(
            SystemConfig.pcie_2gb(num_accelerators=2),
            pcie=PCIeConfig(rc_latency=0),
        )
        spec = SweepSpec("badsweep", [
            SweepPoint(key="pt", config=bad, params={"m": 8, "k": 8, "n": 8})
        ], runner="multigemm")
        with pytest.raises(ValueError, match="badsweep.*pt.*root complex"):
            apply_domains(spec, 2)


# ----------------------------------------------------------------------
# System-level partition: every object lands in exactly one domain
# ----------------------------------------------------------------------
def _registered_topo_configs():
    """Unique point configs across every registered topo-* sweep,
    partitioned at --domains 4."""
    seen = {}
    for name, kwargs in (
        ("topo-endpoint-scaling", {"size": 32}),
        ("topo-contention", {"size": 32}),
        ("topo-p2p", {}),
        ("topo-switch-depth", {"size": 32}),
    ):
        spec = apply_domains(build_sweep(name, **kwargs), 4)
        for point in spec.points:
            seen.setdefault(point.config.stable_hash(), point.config)
    return list(seen.values())


class TestSystemPartition:
    def test_registered_topologies_partition_cleanly(self):
        configs = _registered_topo_configs()
        assert configs, "no topo-* sweeps registered?"
        for config in configs:
            plan = plan_for_config(config)
            assert plan is not None
            system = AcceSysSystem(config)
            assert isinstance(system.sim, ParallelSimulator)
            assert system.sim.num_domains == plan.domains

            # Exactly-one-domain: every registered SimObject carries a
            # valid affinity, and each accelerator subtree agrees on it.
            for obj in system.sim.objects:
                assert 0 <= obj.domain < plan.domains, obj.name
            for index, want in enumerate(plan.endpoint_domain):
                suffix = "" if len(plan.endpoint_domain) == 1 else str(index)
                prefix = f"system.accel{suffix}"
                members = [
                    obj for obj in system.sim.objects
                    if obj.name == prefix
                    or obj.name.startswith(prefix + ".")
                ]
                assert members, prefix
                assert {obj.domain for obj in members} == {want}

            # Host-side objects stay in domain 0.
            host = [
                obj for obj in system.sim.objects
                if not obj.name.startswith("system.accel")
                and not obj.name.startswith("system.pcie.ep")
            ]
            assert host and all(obj.domain == 0 for obj in host)

    def test_cross_domain_segments_respect_lookahead(self):
        for config in _registered_topo_configs():
            system = AcceSysSystem(config)
            plan = system.domain_plan
            fabric = system.fabric
            routes = list(fabric._up_routes) + list(fabric._down_routes)
            crossings = 0
            for route in routes:
                for link, _port, skip_hop, deliver in route:
                    if deliver is None:
                        continue
                    crossings += 1
                    assert not skip_hop
                    assert deliver != link.domain
                    # The lookahead rule: a boundary hop's latency must
                    # cover the quantum.
                    assert link.hop_latency >= plan.quantum
            if plan.domains > 1 and config.effective_topology().num_endpoints > 1:
                assert crossings > 0, config.name


# ----------------------------------------------------------------------
# The acceptance bar: domain-count invariance
# ----------------------------------------------------------------------
class TestDomainCountInvariance:
    def _run_multigemm(self, domains):
        config = SystemConfig.pcie_2gb(num_accelerators=4).with_domains(domains)
        system = AcceSysSystem(config)
        result = MultiGemmRunner().drive(system, m=32, k=32, n=32)
        return system, result

    def test_multigemm_invariant_across_1_2_4_domains(self):
        baseline_system, baseline = self._run_multigemm(1)
        assert isinstance(baseline_system.sim, Simulator)
        assert not isinstance(baseline_system.sim, ParallelSimulator)
        for domains in (2, 4):
            system, result = self._run_multigemm(domains)
            assert isinstance(system.sim, ParallelSimulator)
            assert result.ticks == baseline.ticks
            assert result.device_ticks == baseline.device_ticks
            assert system.sim.events_executed == \
                baseline_system.sim.events_executed
            assert system.now == baseline_system.now
            assert result.component_stats == baseline.component_stats
            assert system.sim.cross_posts > 0

    def test_peer_transfer_invariant(self):
        baseline = None
        for domains in (1, 2, 4):
            config = SystemConfig.pcie_2gb(num_accelerators=4).with_domains(
                domains
            )
            system = AcceSysSystem(config)
            result = PeerTransferRunner().drive(
                system, size_bytes=64 * 1024, mode="p2p"
            )
            snap = (result.ticks, result.root_complex_bytes, system.now,
                    system.sim.events_executed)
            if baseline is None:
                baseline = snap
            assert snap == baseline

    def test_tiered_topology_invariant(self):
        baseline = None
        base = SystemConfig.pcie_2gb(num_accelerators=4).with_topology(
            tiered_topology(4, depth=2)
        )
        for domains in (1, 2, 4):
            system = AcceSysSystem(base.with_domains(domains))
            result = MultiGemmRunner().drive(system, m=32, k=32, n=32)
            snap = (result.ticks, tuple(result.device_ticks),
                    system.sim.events_executed,
                    tuple(sorted(result.component_stats.items())))
            if baseline is None:
                baseline = snap
            assert snap == baseline

    def test_reset_rerun_identity_under_domains(self):
        """A reset ParallelSimulator system replays bit-identically
        (what the sweep engine's system memo relies on)."""
        config = SystemConfig.pcie_2gb(num_accelerators=4).with_domains(4)
        system = AcceSysSystem(config)
        runner = MultiGemmRunner()
        first = runner.drive(system, m=32, k=32, n=32)
        first_events = system.sim.events_executed
        system.reset()
        assert system.sim.pending_events == 0
        second = runner.drive(system, m=32, k=32, n=32)
        assert second.ticks == first.ticks
        assert second.device_ticks == first.device_ticks
        assert second.component_stats == first.component_stats
        assert system.sim.events_executed == first_events
