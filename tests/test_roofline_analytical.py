"""Tests for the roofline sweep and the GEMM/non-GEMM trade-off model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig, find_crossover, roofline_sweep
from repro.core.analytical import (
    TradeoffModel,
    devmem_threshold,
    threshold_table,
)
from repro.core.roofline import RooflinePoint
from repro.sim.ticks import ns, us


class TestRoofline:
    def test_sweep_produces_both_regimes(self):
        config = SystemConfig.pcie_8gb()
        points = roofline_sweep(
            config, 64, [ns(100), us(1), us(4), us(16), us(64), us(256)]
        )
        assert len(points) == 6
        # Fast compute -> memory bound (flat); slow compute -> compute
        # bound (execution tracks compute).
        fastest = min(points, key=lambda p: p.compute_ticks)
        slowest = max(points, key=lambda p: p.compute_ticks)
        assert slowest.exec_ticks > 2 * fastest.exec_ticks
        assert slowest.normalized == 1.0

    def test_crossover_found(self):
        config = SystemConfig.pcie_8gb()
        sweep = [ns(100), ns(500), us(2), us(8), us(32), us(128), us(512)]
        points = roofline_sweep(config, 64, sweep)
        crossover = find_crossover(points)
        assert crossover is not None
        assert ns(100) <= crossover < us(512)

    def test_crossover_none_when_flat(self):
        points = [
            RooflinePoint(ns(t), 1000, 1.0) for t in (1, 2, 3)
        ]
        assert find_crossover(points) is None

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            roofline_sweep(SystemConfig.pcie_8gb(), 64, [])


class TestTradeoffModel:
    def test_endpoints(self):
        model = TradeoffModel("x", gemm_unit_time=10.0, nongemm_unit_time=30.0,
                              t_other=5.0)
        assert model.overall_time(0.0) == 15.0   # all GEMM
        assert model.overall_time(1.0) == 35.0   # all non-GEMM
        assert model.overall_time(0.5) == 25.0

    def test_fraction_bounds(self):
        model = TradeoffModel("x", 1.0, 1.0)
        with pytest.raises(ValueError):
            model.overall_time(-0.1)
        with pytest.raises(ValueError):
            model.overall_time(1.1)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            TradeoffModel("x", -1.0, 1.0)
        with pytest.raises(ValueError):
            TradeoffModel("x", 1.0, 1.0, t_other=-0.5)

    def test_non_finite_times_rejected(self):
        with pytest.raises(ValueError):
            TradeoffModel("x", float("nan"), 1.0)
        with pytest.raises(ValueError):
            TradeoffModel("x", 1.0, float("inf"))
        with pytest.raises(ValueError):
            TradeoffModel("x", 1.0, 1.0, t_other=float("nan"))

    def test_from_measured_validates_and_coerces(self):
        model = TradeoffModel.from_measured("x", 10, 20, other_ticks=5)
        assert isinstance(model.gemm_unit_time, float)
        assert model.overall_time(0.0) == 15.0
        with pytest.raises(ValueError):
            TradeoffModel.from_measured("x", float("nan"), 20)
        with pytest.raises(ValueError):
            TradeoffModel.from_measured("x", 10, -20)
        with pytest.raises(ValueError):
            TradeoffModel.from_measured("x", 10, 20, other_ticks=-1)

    def test_degenerate_all_gemm_workload(self):
        """A workload with no non-GEMM share only sees gemm_unit_time."""
        fast_gemm = TradeoffModel("a", 1.0, 100.0, t_other=2.0)
        slow_gemm = TradeoffModel("b", 5.0, 0.0, t_other=2.0)
        assert fast_gemm.overall_time(0.0) == 3.0
        assert slow_gemm.overall_time(0.0) == 7.0
        # At the all-GEMM endpoint the non-GEMM columns are irrelevant.
        zero_ng = TradeoffModel("c", 1.0, 0.0, t_other=2.0)
        assert fast_gemm.overall_time(0.0) == zero_ng.overall_time(0.0)

    def test_degenerate_all_nongemm_workload(self):
        model = TradeoffModel("x", gemm_unit_time=0.0, nongemm_unit_time=4.0)
        assert model.overall_time(1.0) == 4.0
        assert model.overall_time(0.0) == 0.0

    def test_threshold_tie_within_epsilon_is_dominance(self):
        """Floating-point noise must not turn a tie into a crossing."""
        devmem = TradeoffModel("d", 1.0, 2.0)
        noisy = TradeoffModel("p", 1.0 + 1e-13, 2.0 - 1e-13)
        assert devmem_threshold(devmem, noisy) == 0.0

    def test_sweep_is_linear(self):
        model = TradeoffModel("x", 10.0, 20.0)
        samples = model.sweep(steps=11)
        assert len(samples) == 11
        deltas = [
            b[1] - a[1] for a, b in zip(samples, samples[1:])
        ]
        assert all(d == pytest.approx(deltas[0]) for d in deltas)

    def test_threshold_paper_regime(self):
        """DevMem fast on GEMM, slow on non-GEMM: a threshold exists."""
        devmem = TradeoffModel("DevMem", gemm_unit_time=1.0, nongemm_unit_time=10.0)
        pcie = TradeoffModel("PCIe", gemm_unit_time=4.0, nongemm_unit_time=2.0)
        threshold = devmem_threshold(devmem, pcie)
        # Crossing: 1w_g*1 + w_ng*10 = w_g*4 + w_ng*2 -> w_ng = 3/11.
        assert threshold == pytest.approx(1 - 3 / 11)
        # DevMem indeed wins above the threshold and loses below.
        w_ng_win = 1 - (threshold + 0.05)
        w_ng_lose = 1 - (threshold - 0.05)
        assert devmem.overall_time(w_ng_win) < pcie.overall_time(w_ng_win)
        assert devmem.overall_time(w_ng_lose) > pcie.overall_time(w_ng_lose)

    def test_threshold_decreases_with_pcie_bandwidth(self):
        """The paper's trend: faster PCIe -> lower DevMem threshold ...
        i.e. DevMem needs a *larger* GEMM share to be worth it."""
        devmem = TradeoffModel("DevMem", 1.0, 10.0)
        slow_pcie = TradeoffModel("PCIe-2GB", 8.0, 2.0)
        fast_pcie = TradeoffModel("PCIe-64GB", 1.5, 2.0)
        t_slow = devmem_threshold(devmem, slow_pcie)
        t_fast = devmem_threshold(devmem, fast_pcie)
        assert t_slow < t_fast

    def test_dominance_cases(self):
        devmem = TradeoffModel("DevMem", 1.0, 1.0)
        worse = TradeoffModel("PCIe", 2.0, 2.0)
        assert devmem_threshold(devmem, worse) == 0.0
        better = TradeoffModel("PCIe", 0.5, 0.5)
        assert devmem_threshold(devmem, better) is None

    def test_threshold_table(self):
        devmem = TradeoffModel("DevMem", 1.0, 10.0)
        models = [
            TradeoffModel("PCIe-2GB", 8.0, 2.0),
            TradeoffModel("PCIe-64GB", 1.5, 2.0),
        ]
        table = threshold_table(devmem, models)
        assert [name for name, _ in table] == ["PCIe-2GB", "PCIe-64GB"]

    @settings(max_examples=40)
    @given(
        g1=st.floats(min_value=0.1, max_value=100),
        n1=st.floats(min_value=0.1, max_value=100),
        g2=st.floats(min_value=0.1, max_value=100),
        n2=st.floats(min_value=0.1, max_value=100),
    )
    def test_threshold_consistent_with_direct_comparison(self, g1, n1, g2, n2):
        devmem = TradeoffModel("d", g1, n1)
        pcie = TradeoffModel("p", g2, n2)
        threshold = devmem_threshold(devmem, pcie)
        if threshold is None:
            # PCIe wins everywhere (allow boundary ties).
            for w in (0.0, 0.25, 0.5, 0.75, 1.0):
                assert devmem.overall_time(w) >= pcie.overall_time(w) - 1e-9
