"""Determinism and reproducibility guarantees.

The simulator is meant to be bit-reproducible: same configuration and
workload, same final tick, same statistics.  These tests catch accidental
nondeterminism (iteration-order dependence, unseeded randomness).
"""

import pytest

from repro import SystemConfig, run_gemm, run_vit
from repro.core.stats import stats_to_csv, write_csv
from repro.workloads import ViTConfig


class TestDeterminism:
    def test_gemm_bit_reproducible(self):
        config = SystemConfig.pcie_8gb()
        a = run_gemm(config, 64, 64, 64)
        b = run_gemm(config, 64, 64, 64)
        assert a.ticks == b.ticks
        assert a.component_stats == b.component_stats

    def test_gemm_devmem_reproducible(self):
        config = SystemConfig.devmem_system()
        a = run_gemm(config, 64, 64, 64)
        b = run_gemm(config, 64, 64, 64)
        assert a.ticks == b.ticks

    def test_vit_reproducible(self):
        tiny = ViTConfig("tiny", hidden=64, layers=1, heads=4,
                         image_size=48, patch_size=16)
        config = SystemConfig.pcie_2gb()
        a = run_vit(config, tiny)
        b = run_vit(config, tiny)
        assert a.total_ticks == b.total_ticks
        assert a.op_ticks == b.op_ticks

    def test_functional_independent_of_timing_config(self):
        """Data results must not depend on the timing configuration."""
        import numpy as np

        results = []
        for config in (
            SystemConfig.pcie_2gb(),
            SystemConfig.pcie_64gb(),
            SystemConfig.devmem_system(),
        ):
            r = run_gemm(config, 32, 32, 32, functional=True, seed=77)
            results.append(r.c_matrix)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestCsvExport:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        text = path.read_text()
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_stats_to_csv(self, tmp_path):
        result = run_gemm(SystemConfig.pcie_2gb(), 64, 64, 64)
        path = tmp_path / "stats.csv"
        stats_to_csv(str(path), result.component_stats)
        lines = path.read_text().splitlines()
        assert lines[0] == "stat,value"
        assert len(lines) > 10
