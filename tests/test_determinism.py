"""Determinism and reproducibility guarantees.

The simulator is meant to be bit-reproducible: same configuration and
workload, same final tick, same statistics.  These tests catch accidental
nondeterminism (iteration-order dependence, unseeded randomness).

``TestGoldenValues`` pins results to constants captured from the
pre-hot-path-overhaul simulator (PR 2 tree), proving the event-queue
slab, the throttled run loops, the dirty-flag stat snapshots and the
batched component stat updates changed *nothing* observable: same event
count, same final tick, same full per-component stat snapshot.
"""

import pytest

from repro import SystemConfig, run_gemm, run_vit
from repro.core.runner import GemmRunner
from repro.core.stats import stats_to_csv, write_csv
from repro.workloads import ViTConfig

#: Captured from the seed tree (commit d27229d) with
#: ``run_gemm(SystemConfig.pcie_8gb(), 64, 64, 64)`` on a fresh system.
GOLDEN_GEMM_PCIE8_64 = {
    "ticks": 27094401,
    "job_ticks": 25101174,
    "traffic_bytes": 147456,
    "events_executed": 543,
    "final_tick": 27138401,
}

#: Full component_stats snapshot for the same run (seed tree).
GOLDEN_GEMM_PCIE8_64_STATS = {
    "system.accel.sa.busy_ticks": 16384000,
    "system.accel.sa.idle_ticks": 5915632,
    "system.accel.sa.macs": 262144,
    "system.accel.sa.tiles": 16,
    "system.accel.dma.bytes_read": 131072,
    "system.accel.dma.bytes_written": 16384,
    "system.accel.dma.descriptors": 48,
    "system.accel.dma.segment_ticks.count": 48,
    "system.accel.dma.segment_ticks.mean": 1309057.2708333333,
    "system.accel.dma.segments": 48,
    "system.pcie.up.busy_ticks": 4323008,
    "system.pcie.up.payload_bytes": 16384,
    "system.pcie.up.tlps": 576,
    "system.pcie.up.wire_bytes": 30208,
    "system.pcie.down.busy_ticks": 18236189,
    "system.pcie.down.payload_bytes": 131120,
    "system.pcie.down.tlps": 521,
    "system.pcie.down.wire_bytes": 143624,
    "system.llc.accesses": 169,
    "system.llc.evictions": 0,
    "system.llc.hits": 139,
    "system.llc.invalidations": 0,
    "system.llc.misses": 837,
    "system.llc.writebacks": 0,
    "system.iocache.accesses": 48,
    "system.iocache.evictions": 256,
    "system.iocache.hits": 1472,
    "system.iocache.invalidations": 0,
    "system.iocache.misses": 832,
    "system.iocache.writebacks": 128,
    "system.mem_ctrl.bursts": 837,
    "system.mem_ctrl.bytes": 53568,
    "system.mem_ctrl.bytes_read": 53568,
    "system.mem_ctrl.bytes_written": 0,
    "system.mem_ctrl.reads": 30,
    "system.mem_ctrl.refresh_stalls": 0,
    "system.mem_ctrl.row_hits": 829,
    "system.mem_ctrl.row_misses": 8,
    "system.mem_ctrl.writes": 0,
    "system.membus.bytes": 61568,
    "system.membus.snoop_invalidations": 0,
    "system.membus.transactions": 169,
    "system.membus.unrouted": 0,
    "system.smmu.page_faults": 0,
    "system.smmu.ptw_cycles.count": 13,
    "system.smmu.ptw_cycles.mean": 58.07692307692308,
    "system.smmu.stall_ticks": 1301154,
    "system.smmu.trans_cycles.count": 2304,
    "system.smmu.trans_cycles.mean": 1.3728298611111112,
    "system.smmu.translations": 2304,
}

#: Seed-tree values for one DevMem GEMM and one tiny-ViT inference.
GOLDEN_GEMM_DEVMEM_64_TICKS = 18926000
GOLDEN_VIT_TINY_PCIE2 = {
    "total_ticks": 869144473,
    "gemm_ticks": 805464473,
    "nongemm_ticks": 63680000,
}


class TestDeterminism:
    def test_gemm_bit_reproducible(self):
        config = SystemConfig.pcie_8gb()
        a = run_gemm(config, 64, 64, 64)
        b = run_gemm(config, 64, 64, 64)
        assert a.ticks == b.ticks
        assert a.component_stats == b.component_stats

    def test_gemm_devmem_reproducible(self):
        config = SystemConfig.devmem_system()
        a = run_gemm(config, 64, 64, 64)
        b = run_gemm(config, 64, 64, 64)
        assert a.ticks == b.ticks

    def test_vit_reproducible(self):
        tiny = ViTConfig("tiny", hidden=64, layers=1, heads=4,
                         image_size=48, patch_size=16)
        config = SystemConfig.pcie_2gb()
        a = run_vit(config, tiny)
        b = run_vit(config, tiny)
        assert a.total_ticks == b.total_ticks
        assert a.op_ticks == b.op_ticks

    def test_functional_independent_of_timing_config(self):
        """Data results must not depend on the timing configuration."""
        import numpy as np

        results = []
        for config in (
            SystemConfig.pcie_2gb(),
            SystemConfig.pcie_64gb(),
            SystemConfig.devmem_system(),
        ):
            r = run_gemm(config, 32, 32, 32, functional=True, seed=77)
            results.append(r.c_matrix)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestGoldenValues:
    """Bit-identical to the pre-optimization simulator (seed capture)."""

    def test_gemm_pcie8_matches_seed_capture(self):
        runner = GemmRunner()
        # A fresh (non-memoized) system so events_executed covers the
        # whole run including driver probe, exactly as captured.
        from repro.core.system import AcceSysSystem

        system = AcceSysSystem(SystemConfig.pcie_8gb())
        result = runner.drive(system, m=64, k=64, n=64)
        golden = GOLDEN_GEMM_PCIE8_64
        assert result.ticks == golden["ticks"]
        assert result.job_ticks == golden["job_ticks"]
        assert result.traffic_bytes == golden["traffic_bytes"]
        assert system.sim.events_executed == golden["events_executed"]
        assert system.sim.now == golden["final_tick"]
        assert result.component_stats == GOLDEN_GEMM_PCIE8_64_STATS

    def test_gemm_devmem_matches_seed_capture(self):
        result = run_gemm(SystemConfig.devmem_system(), 64, 64, 64)
        assert result.ticks == GOLDEN_GEMM_DEVMEM_64_TICKS

    def test_vit_tiny_matches_seed_capture(self):
        tiny = ViTConfig("tiny", hidden=64, layers=1, heads=4,
                         image_size=48, patch_size=16)
        result = run_vit(SystemConfig.pcie_2gb(), tiny)
        assert result.total_ticks == GOLDEN_VIT_TINY_PCIE2["total_ticks"]
        assert result.gemm_ticks == GOLDEN_VIT_TINY_PCIE2["gemm_ticks"]
        assert result.nongemm_ticks == GOLDEN_VIT_TINY_PCIE2["nongemm_ticks"]

    def test_reset_then_rerun_identity_on_freelist_path(self):
        """A reset system re-runs bit-identically.

        The second run schedules through a reset simulator; the freelist
        recycles events *within* each run, and reset replaces the queue
        (freelist, sequence counter and skipped count included), so both
        runs must agree event-for-event and stat-for-stat.
        """
        from repro.core.system import AcceSysSystem

        runner = GemmRunner()
        system = AcceSysSystem(SystemConfig.pcie_8gb())
        first = runner.drive(system, m=64, k=64, n=64)
        first_events = system.sim.events_executed
        first_tick = system.sim.now

        system.reset()
        second = runner.drive(system, m=64, k=64, n=64)
        assert system.sim.events_executed == first_events
        assert system.sim.now == first_tick
        assert second.ticks == first.ticks
        assert second.component_stats == first.component_stats
        # And both match the seed capture, not merely each other.
        assert second.component_stats == GOLDEN_GEMM_PCIE8_64_STATS


class TestCsvExport:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        text = path.read_text()
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_stats_to_csv(self, tmp_path):
        result = run_gemm(SystemConfig.pcie_2gb(), 64, 64, 64)
        path = tmp_path / "stats.csv"
        stats_to_csv(str(path), result.component_stats)
        lines = path.read_text().splitlines()
        assert lines[0] == "stat,value"
        assert len(lines) > 10
