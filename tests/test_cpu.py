"""Unit tests for the timing CPU and non-GEMM kernels."""

import pytest

from repro.cpu import NONGEMM_COSTS, kernel_for_op
from repro.cpu.cpu import StreamRef, TimingCPU
from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns


def make_cpu(mem_latency=ns(50), **kw):
    sim = Simulator()
    mem = FixedLatencyTarget(sim, "mem", latency=mem_latency)
    cpu = TimingCPU(sim, "cpu", mem, **kw)
    return sim, cpu, mem


def run_kernel(sim, cpu, streams, cycles):
    done = []
    cpu.run_kernel(streams, cycles, lambda t: done.append(t))
    sim.run()
    assert done, "kernel never completed"
    return done[0]


class TestStreamRef:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamRef(0, 0)


class TestTimingCPU:
    def test_pure_compute_kernel(self):
        sim, cpu, _ = make_cpu()
        elapsed = run_kernel(sim, cpu, [], cycles := 1000)
        assert elapsed == cycles * cpu.clock_period

    def test_memory_bound_kernel(self):
        sim, cpu, mem = make_cpu(mem_latency=ns(100))
        elapsed = run_kernel(sim, cpu, [StreamRef(0, 8192)], 10)
        assert elapsed >= ns(100)
        assert mem.stats["transactions"].value == 8

    def test_compute_hides_memory(self):
        sim, cpu, _ = make_cpu(mem_latency=ns(10))
        # Compute budget far exceeds memory time.
        elapsed = run_kernel(sim, cpu, [StreamRef(0, 1024)], 100_000)
        assert elapsed == 100_000 * cpu.clock_period

    def test_mlp_window_bounds_overlap(self):
        def run(window):
            sim, cpu, _ = make_cpu(mem_latency=ns(200), mlp_window=window)
            return run_kernel(sim, cpu, [StreamRef(0, 16 * 1024)], 0)

        assert run(8) < run(1)

    def test_streams_interleaved(self):
        sim, cpu, mem = make_cpu()
        streams = [StreamRef(0, 2048), StreamRef(1 << 20, 2048, is_read=False)]
        run_kernel(sim, cpu, streams, 0)
        assert cpu.stats["mem_bytes"].value == 4096

    def test_serialized_kernels(self):
        sim, cpu, _ = make_cpu()
        cpu.run_kernel([StreamRef(0, 1024)], 100, lambda t: None)
        with pytest.raises(RuntimeError):
            cpu.run_kernel([StreamRef(0, 1024)], 100, lambda t: None)
        sim.run()
        # After completion a new kernel is accepted.
        cpu.run_kernel([StreamRef(0, 1024)], 100, lambda t: None)
        sim.run()
        assert cpu.stats["kernels"].value == 2

    def test_validation(self):
        sim = Simulator()
        mem = FixedLatencyTarget(sim, "m", 1)
        with pytest.raises(ValueError):
            TimingCPU(sim, "c", mem, mlp_window=0)
        with pytest.raises(ValueError):
            TimingCPU(sim, "c", mem, segment_bytes=32)

    def test_mem_stall_stat(self):
        sim, cpu, _ = make_cpu(mem_latency=ns(500))
        run_kernel(sim, cpu, [StreamRef(0, 4096)], 1)
        assert cpu.stats["mem_stall_ticks"].value > 0


class TestNonGemmKernels:
    def test_kernel_construction(self):
        kernel = kernel_for_op(
            "softmax", 1000, [(0, 4000)], [(8192, 4000)]
        )
        assert kernel.compute_cycles == int(1000 * NONGEMM_COSTS["softmax"])
        assert kernel.bytes_touched == 8000
        assert len(kernel.streams) == 2
        assert kernel.streams[0].is_read
        assert not kernel.streams[1].is_read

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            kernel_for_op("fft", 100, [], [])

    def test_bad_elements_rejected(self):
        with pytest.raises(ValueError):
            kernel_for_op("add", 0, [], [])

    def test_cost_table_sanity(self):
        # Softmax is the most expensive per element; add the cheapest.
        assert NONGEMM_COSTS["softmax"] > NONGEMM_COSTS["layernorm"]
        assert NONGEMM_COSTS["add"] < NONGEMM_COSTS["layernorm"]
