"""Tests for the analytical surrogate tier and the fidelity ladder."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig
from repro.surrogate import (
    Calibration,
    CalibrationError,
    LadderSpec,
    RunnerCalibration,
    SurrogateEstimate,
    SurrogateGrid,
    cross_validate,
    estimate_grid,
    estimate_point,
    estimate_spec,
    pareto_front,
    parse_top_k,
    run_ladder,
    stratified_sample,
    survivor_spec,
    top_k,
)
from repro.sweep.engine import run_sweep
from repro.sweep.spec import build_sweep


def _estimates(objective_rows):
    """Build estimates keyed by index from (ticks, wire, busy) rows."""
    return [
        SurrogateEstimate(i, "gemm", float(t), float(w), float(b))
        for i, (t, w, b) in enumerate(objective_rows)
    ]


_row = st.tuples(
    st.floats(min_value=1.0, max_value=1e9),
    st.floats(min_value=0.0, max_value=1e9),
    st.floats(min_value=0.0, max_value=1.0),
)
_rows = st.lists(_row, min_size=1, max_size=24)


class TestParseTopK:
    def test_forms(self):
        assert parse_top_k(3, 10) == 3
        assert parse_top_k("12", 20) == 12
        assert parse_top_k("10%", 80) == 8
        assert parse_top_k("25%", 8) == 2

    def test_clamped_to_grid(self):
        assert parse_top_k(100, 10) == 10
        assert parse_top_k("1%", 10) == 1  # rounds to 0, clamps up

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            parse_top_k(0, 10)
        with pytest.raises(ValueError):
            parse_top_k("0%", 10)
        with pytest.raises(ValueError):
            parse_top_k("150%", 10)


class TestTopK:
    def test_exact_k_at_zero_margin_despite_ties(self):
        rows = [(10, 0, 0), (10, 0, 0), (10, 0, 0), (20, 0, 0)]
        survivors = top_k(_estimates(rows), 2, margin=0.0)
        assert [e.key for e in survivors] == [0, 1]

    def test_margin_restores_near_ties(self):
        rows = [(10, 0, 0), (10, 0, 0), (10.5, 0, 0), (20, 0, 0)]
        survivors = top_k(_estimates(rows), 1, margin=0.1)
        assert [e.key for e in survivors] == [0, 1, 2]

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            top_k(_estimates([(1, 0, 0)]), 1, margin=-0.1)

    @settings(max_examples=60, deadline=None)
    @given(rows=_rows, k=st.integers(min_value=1, max_value=30))
    def test_subset_and_exact_count(self, rows, k):
        estimates = _estimates(rows)
        survivors = top_k(estimates, k, margin=0.0)
        keys = {e.key for e in estimates}
        assert all(e.key in keys for e in survivors)
        assert len(survivors) == min(k, len(estimates))

    @settings(max_examples=60, deadline=None)
    @given(
        rows=_rows,
        k=st.integers(min_value=1, max_value=30),
        lo=st.floats(min_value=0.0, max_value=0.5),
        hi=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_margin_monotone(self, rows, k, lo, hi):
        lo, hi = sorted((lo, hi))
        estimates = _estimates(rows)
        small = {e.key for e in top_k(estimates, k, margin=lo)}
        large = {e.key for e in top_k(estimates, k, margin=hi)}
        assert small <= large


class TestParetoFront:
    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            pareto_front(_estimates([(1, 1, 0)]), objectives=("nope",))

    def test_simple_front(self):
        rows = [(1, 10, 0), (10, 1, 0), (10, 10, 0), (20, 20, 0)]
        front = pareto_front(_estimates(rows))
        # (10, 10) is weakly but not strictly dominated; (20, 20) is.
        assert [e.key for e in front] == [0, 1, 2]

    @settings(max_examples=60, deadline=None)
    @given(rows=_rows, margin=st.floats(min_value=0.0, max_value=0.5))
    def test_matches_brute_force(self, rows, margin):
        """Survivor iff nothing margin-dominates it -- checked naively."""
        estimates = _estimates(rows)
        objectives = ("ticks", "bytes_on_wire")
        survivors = {
            e.key
            for e in pareto_front(estimates, objectives, margin=margin)
        }
        factor = 1.0 + margin
        for p in estimates:
            dominated = any(
                all(
                    q.objective(name) * factor < p.objective(name)
                    for name in objectives
                )
                for q in estimates
            )
            assert (p.key not in survivors) == dominated

    @settings(max_examples=60, deadline=None)
    @given(
        rows=_rows,
        lo=st.floats(min_value=0.0, max_value=0.5),
        hi=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_margin_monotone(self, rows, lo, hi):
        lo, hi = sorted((lo, hi))
        estimates = _estimates(rows)
        small = {e.key for e in pareto_front(estimates, margin=lo)}
        large = {e.key for e in pareto_front(estimates, margin=hi)}
        assert small <= large


class TestEstimators:
    @pytest.mark.parametrize(
        "name",
        ["fig6a-mem-bandwidth", "topo-contention", "topo-p2p",
         "access-modes", "fig4-packet-grid"],
    )
    def test_spec_estimates_are_sane(self, name):
        spec = build_sweep(name)
        estimates = estimate_spec(spec)
        assert len(estimates) == len(spec.points)
        for est in estimates:
            assert est.ticks > 0
            assert est.bytes_on_wire >= 0
            assert 0.0 <= est.uplink_busy <= 1.0

    def test_vit_estimates(self):
        spec = build_sweep("fig7-transformer")
        estimates = {e.key: e for e in estimate_spec(spec)}
        assert len(estimates) == len(spec.points)
        assert all(e.ticks > 0 for e in estimates.values())
        # The large model costs more than the base model, system for
        # system -- ordering the ladder must preserve.
        for system in ("PCIe-8GB", "DevMem"):
            assert (estimates[("large", system)].ticks
                    > estimates[("base", system)].ticks)

    def test_bandwidth_ordering_preserved(self):
        """More device-memory bandwidth never estimates slower."""
        spec = build_sweep("fig6a-mem-bandwidth", size=64)
        estimates = estimate_spec(spec)
        by_bw = sorted(estimates, key=lambda e: e.key)
        ticks = [e.ticks for e in by_bw]
        assert ticks == sorted(ticks, reverse=True)

    def test_compute_override_via_roofline_sweep(self):
        spec = build_sweep("roofline")
        estimates = estimate_spec(spec)
        assert len(estimates) == len(spec.points)
        # Past the roofline knee, execution tracks compute ticks.
        by_compute = sorted(estimates, key=lambda e: e.key)
        assert by_compute[-1].ticks > by_compute[0].ticks

    def test_estimate_point_matches_spec_path(self):
        config = SystemConfig.pcie_8gb()
        est = estimate_point(config, runner="gemm", m=64, k=64, n=64)
        assert est.ticks > 0


class TestGrid:
    def test_validation(self):
        config = SystemConfig.pcie_8gb()
        with pytest.raises(ValueError):
            SurrogateGrid(base=config, axes={})
        with pytest.raises(ValueError):
            SurrogateGrid(base=config, axes={"bogus": [1]})
        with pytest.raises(ValueError):
            SurrogateGrid(base=config, axes={"size": []})

    def test_vector_matches_scalar(self):
        """The vectorized grid path agrees exactly with estimate_point."""
        config = SystemConfig.pcie_8gb()
        sizes = [32, 64, 96, 256]
        packets = [128, 256, 512]
        grid = SurrogateGrid(
            base=config, axes={"size": sizes, "packet_size": packets}
        )
        scored = estimate_grid(grid)
        assert scored.shape == (len(sizes), len(packets))
        for i, size in enumerate(sizes):
            for j, packet in enumerate(packets):
                est = estimate_point(
                    config, runner="gemm",
                    m=size, k=size, n=size, packet_size=packet,
                )
                assert np.isclose(scored.ticks[i, j], est.ticks, rtol=1e-9)
                assert np.isclose(
                    scored.bytes_on_wire[i, j], est.bytes_on_wire, rtol=1e-9
                )
                assert np.isclose(
                    scored.uplink_busy[i, j], est.uplink_busy, rtol=1e-9
                )

    def test_materialized_estimates_keys(self):
        grid = SurrogateGrid(
            base=SystemConfig.pcie_8gb(),
            axes={"size": [32, 64], "packet_size": [128, 256]},
        )
        estimates = estimate_grid(grid).estimates()
        assert [e.key for e in estimates] == [
            (32, 128), (32, 256), (64, 128), (64, 256),
        ]


class TestLadder:
    def test_spec_validation(self):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        with pytest.raises(ValueError):
            LadderSpec(spec=spec)  # neither filter
        with pytest.raises(ValueError):
            LadderSpec(spec=spec, top_k=2, pareto=True)  # both
        with pytest.raises(ValueError):
            LadderSpec(spec=spec, top_k=2, margin=-0.5)
        with pytest.raises(ValueError):
            LadderSpec(spec=spec, top_k=2, objectives=())

    def test_survivors_bit_identical_to_direct_run(self, tmp_path):
        """The golden property: the ladder never changes survivor records."""
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        ladder = LadderSpec(spec=spec, top_k=2, margin=0.0)
        report = run_ladder(
            ladder, workers=1, cache_dir=tmp_path / "ladder"
        )
        assert report.scored == len(spec.points)
        assert report.surviving == 2
        assert report.pruned == len(spec.points) - 2

        direct = run_sweep(
            survivor_spec(spec, report.survivor_keys),
            workers=1, cache=False,
        )
        ladder_records = {
            o.key: o.record for o in report.report.outcomes
        }
        direct_records = {o.key: o.record for o in direct.outcomes}
        assert ladder_records == direct_records

        # Survivors landed in the shared cache: a replay is all hits.
        replay = run_ladder(
            ladder, workers=1, cache_dir=tmp_path / "ladder"
        )
        assert replay.report.fully_cached
        assert replay.survivor_keys == report.survivor_keys

    def test_report_record_shape(self, tmp_path):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        ladder = LadderSpec(spec=spec, top_k=1, margin=0.0)
        report = run_ladder(ladder, workers=1, cache_dir=tmp_path)
        record = report.to_record()
        assert record["ladder"]["scored"] == len(spec.points)
        assert record["ladder"]["surviving"] == 1
        assert len(record["points"]) == 1
        json.dumps(record)  # JSON-safe end to end
        assert "pruned" in report.describe()

    def test_pareto_ladder_runs(self, tmp_path):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        ladder = LadderSpec(
            spec=spec, pareto=True,
            objectives=("ticks", "bytes_on_wire"), margin=0.0,
        )
        report = run_ladder(ladder, workers=1, cache_dir=tmp_path)
        assert 1 <= report.surviving <= len(spec.points)


class TestCrossValidation:
    def test_stratified_sample(self):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        full = stratified_sample(spec, fraction=1.0)
        assert [p.key for p in full.points] == [p.key for p in spec.points]
        half = stratified_sample(spec, fraction=0.5)
        assert [p.key for p in half.points] == [
            p.key for p in spec.points[::2]
        ]
        tiny = stratified_sample(spec, fraction=0.01)
        assert [p.key for p in tiny.points] == [
            spec.points[0].key, spec.points[-1].key,
        ]
        with pytest.raises(ValueError):
            stratified_sample(spec, fraction=0.0)

    def test_calibration_round_trip(self, tmp_path):
        calib = Calibration(runners={
            "gemm": RunnerCalibration(
                scale=1.4, p50=-0.01, p95=0.3, max=0.5, samples=4
            ),
        })
        path = tmp_path / "calib.json"
        calib.save(path)
        loaded = Calibration.load(path)
        assert loaded == calib
        assert loaded.scale_for("gemm") == 1.4
        assert loaded.scale_for("vit") == 1.0
        assert loaded.p95_for("vit") is None
        assert "gemm" in loaded.describe()

    def test_cross_validate_fits_scale(self, tmp_path):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        calib = cross_validate(
            spec, fraction=0.5, workers=1, cache_dir=tmp_path
        )
        entry = calib.runners["gemm"]
        assert entry.scale > 0
        assert entry.samples == 4
        assert 0.0 <= entry.p95 <= entry.max
        # Scaled estimates carry the fitted factor.
        raw = estimate_spec(spec)
        scaled = estimate_spec(spec, calibration=calib)
        for before, after in zip(raw, scaled):
            assert after.ticks == pytest.approx(before.ticks * entry.scale)

    def test_ladder_refuses_uncalibrated_margin(self, tmp_path):
        spec = build_sweep("fig6a-mem-bandwidth", size=32)
        calib = Calibration(runners={
            "gemm": RunnerCalibration(
                scale=1.0, p50=0.0, p95=0.4, max=0.6, samples=4
            ),
        })
        ladder = LadderSpec(
            spec=spec, top_k=2, margin=0.1, calibration=calib
        )
        with pytest.raises(CalibrationError):
            run_ladder(ladder, workers=1, cache=False)
        # A margin at or above the measured p95 is accepted.
        ok = dataclasses.replace(ladder, margin=0.4)
        report = run_ladder(ok, workers=1, cache_dir=tmp_path)
        assert report.surviving >= 2


class TestRegisteredSweeps:
    def test_roofline_sweep_registered(self):
        spec = build_sweep("roofline")
        assert spec.runner == "gemm"
        assert len(spec.points) == 6
        # Keys are the per-tile compute overrides, baked into each config.
        assert [p.key for p in spec.points] == sorted(
            p.key for p in spec.points
        )
        assert all(
            p.config.compute_ticks_override == p.key for p in spec.points
        )

    def test_surrogate_xval_sweep_registered(self):
        spec = build_sweep("surrogate-xval", fraction=0.5)
        base = build_sweep("fig6a-mem-bandwidth")
        assert spec.name == "surrogate-xval"
        assert [p.key for p in spec.points] == [
            p.key for p in base.points[::2]
        ]

    def test_surrogate_xval_other_target(self):
        spec = build_sweep(
            "surrogate-xval", target="topo-p2p", fraction=0.34
        )
        assert spec.runner == "peer"
        assert len(spec.points) == 2
