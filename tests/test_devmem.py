"""Unit tests for the device memory controller."""

import numpy as np
import pytest

from repro.accel.devmem import DeviceMemory
from repro.memory.addr_range import AddrRange
from repro.memory.dram.devices import HBM2
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ticks import ns, serialization_ticks, ticks_to_seconds
from repro.sim.transaction import Transaction

GB = 10**9
RANGE = AddrRange(0x8_0000_0000, 0x8_0000_0000 + (1 << 24))


def make_simple(latency=ns(40), bandwidth=64 * GB, backing=False):
    sim = Simulator()
    store = PhysicalMemory(RANGE) if backing else None
    devmem = DeviceMemory(
        sim, "devmem", RANGE,
        simple_latency=latency, simple_bandwidth=bandwidth, backing=store,
    )
    return sim, devmem


class TestSimpleBackend:
    def test_access_latency_includes_controller(self):
        sim, devmem = make_simple(latency=ns(40))
        done = []
        devmem.send(
            Transaction.read(RANGE.start, 64), lambda t: done.append(sim.now)
        )
        sim.run()
        serialize = serialization_ticks(64, 64 * GB)
        assert done[0] == devmem.ctrl_latency + serialize + ns(40)

    def test_counts_accesses(self):
        sim, devmem = make_simple()
        for i in range(5):
            devmem.send(
                Transaction.read(RANGE.start + i * 64, 64), lambda t: None
            )
        sim.run()
        assert devmem.stats["accesses"].value == 5

    def test_functional_round_trip(self):
        sim, devmem = make_simple(backing=True)
        payload = np.arange(128, dtype=np.uint8)
        devmem.send(
            Transaction.write(RANGE.start, 128, payload), lambda t: None
        )
        got = []
        devmem.send(
            Transaction.read(RANGE.start, 128), lambda t: got.append(t.data)
        )
        sim.run()
        np.testing.assert_array_equal(got[0], payload)


class TestDRAMBackend:
    def test_dram_timing_model_used(self):
        sim = Simulator()
        devmem = DeviceMemory(sim, "devmem", RANGE, timings=HBM2)
        total = 1 << 20
        addr = RANGE.start
        while addr < RANGE.start + total:
            devmem.send(Transaction.read(addr, 4096), lambda t: None)
            addr += 4096
        sim.run()
        achieved = total / ticks_to_seconds(sim.now)
        # Streams approach, but never exceed, the HBM2 peak.
        assert 0.5 * HBM2.total_bandwidth < achieved <= HBM2.total_bandwidth

    def test_dram_beats_slow_simple(self):
        sim_a = Simulator()
        fast = DeviceMemory(sim_a, "d", RANGE, timings=HBM2)
        for i in range(64):
            fast.send(Transaction.read(RANGE.start + i * 4096, 4096),
                      lambda t: None)
        sim_a.run()

        sim_b, slow = make_simple(bandwidth=2 * GB)
        for i in range(64):
            slow.send(Transaction.read(RANGE.start + i * 4096, 4096),
                      lambda t: None)
        sim_b.run()
        assert sim_a.now < sim_b.now
