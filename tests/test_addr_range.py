"""Unit and property tests for address-range algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.addr_range import AddrRange, InterleavedRange, disjoint


class TestAddrRange:
    def test_from_size(self):
        r = AddrRange.from_size(0x1000, 0x100)
        assert r.start == 0x1000
        assert r.end == 0x1100
        assert r.size == 0x100

    def test_contains(self):
        r = AddrRange(10, 20)
        assert r.contains(10)
        assert r.contains(19)
        assert not r.contains(20)
        assert not r.contains(9)

    def test_contains_range(self):
        outer = AddrRange(0, 100)
        assert outer.contains_range(AddrRange(0, 100))
        assert outer.contains_range(AddrRange(10, 20))
        assert not outer.contains_range(AddrRange(90, 101))

    def test_overlaps(self):
        assert AddrRange(0, 10).overlaps(AddrRange(9, 20))
        assert not AddrRange(0, 10).overlaps(AddrRange(10, 20))

    def test_intersection(self):
        got = AddrRange(0, 10).intersection(AddrRange(5, 15))
        assert got == AddrRange(5, 10)
        assert AddrRange(0, 10).intersection(AddrRange(10, 20)) is None

    def test_offset(self):
        assert AddrRange(0x100, 0x200).offset(0x180) == 0x80
        with pytest.raises(ValueError):
            AddrRange(0x100, 0x200).offset(0x200)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            AddrRange(10, 5)
        with pytest.raises(ValueError):
            AddrRange(-1, 5)

    def test_disjoint(self):
        assert disjoint([AddrRange(0, 10), AddrRange(10, 20)])
        assert not disjoint([AddrRange(0, 11), AddrRange(10, 20)])

    def test_str(self):
        assert str(AddrRange(0, 16)) == "[0x0, 0x10)"


class TestAddrRangeProperties:
    @given(
        start=st.integers(min_value=0, max_value=2**40),
        size=st.integers(min_value=0, max_value=2**20),
        probe=st.integers(min_value=0, max_value=2**41),
    )
    def test_contains_matches_interval_definition(self, start, size, probe):
        r = AddrRange.from_size(start, size)
        assert r.contains(probe) == (start <= probe < start + size)

    @given(
        a_start=st.integers(min_value=0, max_value=1000),
        a_size=st.integers(min_value=1, max_value=1000),
        b_start=st.integers(min_value=0, max_value=1000),
        b_size=st.integers(min_value=1, max_value=1000),
    )
    def test_overlap_symmetric_and_matches_intersection(
        self, a_start, a_size, b_start, b_size
    ):
        a = AddrRange.from_size(a_start, a_size)
        b = AddrRange.from_size(b_start, b_size)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(
        a_start=st.integers(min_value=0, max_value=1000),
        a_size=st.integers(min_value=1, max_value=1000),
        b_start=st.integers(min_value=0, max_value=1000),
        b_size=st.integers(min_value=1, max_value=1000),
    )
    def test_intersection_contained_in_both(self, a_start, a_size, b_start, b_size):
        a = AddrRange.from_size(a_start, a_size)
        b = AddrRange.from_size(b_start, b_size)
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_range(inter)
            assert b.contains_range(inter)


class TestInterleavedRange:
    def test_channel_of_round_robin(self):
        base = AddrRange(0, 1024)
        ir = InterleavedRange(base, num_channels=4, granularity=64)
        assert [ir.channel_of(i * 64) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_split_covers_range(self):
        base = AddrRange(0, 4096)
        ir = InterleavedRange(base, num_channels=2, granularity=64)
        pieces = ir.split(100, 300)
        assert sum(size for _, _, size in pieces) == 300
        assert pieces[0][1] == 100
        # Pieces are contiguous.
        for (_, addr, size), (_, next_addr, _) in zip(pieces, pieces[1:]):
            assert addr + size == next_addr

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            InterleavedRange(AddrRange(0, 64), 2, granularity=48)

    def test_bad_channels_rejected(self):
        with pytest.raises(ValueError):
            InterleavedRange(AddrRange(0, 64), 0, granularity=64)

    @given(
        start=st.integers(min_value=0, max_value=2000),
        size=st.integers(min_value=1, max_value=2000),
        channels=st.integers(min_value=1, max_value=8),
    )
    def test_split_property(self, start, size, channels):
        ir = InterleavedRange(AddrRange(0, 8192), channels, granularity=64)
        pieces = ir.split(start, size)
        assert sum(s for _, _, s in pieces) == size
        for channel, addr, piece_size in pieces:
            assert 0 <= channel < channels
            # No piece crosses a granularity boundary.
            assert addr // 64 == (addr + piece_size - 1) // 64
            assert ir.channel_of(addr) == channel
