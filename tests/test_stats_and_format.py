"""Unit tests for statistics primitives and report formatting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig, collect_stats, format_table, run_gemm
from repro.core.system import AcceSysSystem
from repro.sim.statistics import Histogram, Scalar, StatGroup


class TestScalar:
    def test_inc_and_set(self):
        s = Scalar("x")
        s.inc()
        s.inc(4)
        assert s.value == 5
        s.set(2)
        assert s.value == 2
        s.reset()
        assert s.value == 0

    def test_repr(self):
        s = Scalar("hits")
        assert "hits" in repr(s)


class TestHistogram:
    def test_moments(self):
        h = Histogram("lat")
        for v in (10, 20, 30):
            h.sample(v)
        assert h.count == 3
        assert h.mean == 20
        assert h.min == 10
        assert h.max == 30

    def test_repeat_samples(self):
        h = Histogram("lat")
        h.sample(5, repeat=100)
        assert h.count == 100
        assert h.mean == 5

    def test_variance(self):
        h = Histogram("lat")
        h.sample(0)
        h.sample(10)
        assert h.variance == pytest.approx(25.0)

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.variance == 0.0

    @settings(max_examples=30)
    @given(values=st.lists(st.integers(min_value=0, max_value=10**6),
                           min_size=1, max_size=50))
    def test_mean_matches_reference(self, values):
        h = Histogram("x")
        for v in values:
            h.sample(v)
        assert h.mean == pytest.approx(sum(values) / len(values))


class TestHistogramQuantiles:
    def test_requires_opt_in(self):
        h = Histogram("lat")
        assert not h.tracks_quantiles
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_bounds_and_validation(self):
        h = Histogram("lat", track_quantiles=True)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        assert h.quantile(0.5) == 0.0  # empty histogram
        for v in (1.0, 2.0, 1000.0):
            h.sample(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 1000.0

    def test_uniform_quantiles(self):
        h = Histogram("lat", track_quantiles=True)
        for v in range(1, 101):
            h.sample(float(v))
        # Power-of-two buckets give a coarse but order-true estimate,
        # clamped to the observed range.
        assert 30 <= h.quantile(0.50) <= 70
        assert h.quantile(0.95) >= h.quantile(0.50)
        assert h.quantile(0.99) <= 100.0

    def test_non_positive_samples(self):
        h = Histogram("lat", track_quantiles=True)
        h.sample(-4.0)
        h.sample(0.0)
        h.sample(16.0)
        assert h.quantile(0.0) == -4.0
        assert h.quantile(1.0) == 16.0
        assert -4.0 <= h.quantile(0.5) <= 16.0

    def test_reset_clears_buckets(self):
        h = Histogram("lat", track_quantiles=True)
        h.sample(64.0, repeat=10)
        h.reset()
        assert h.quantile(0.5) == 0.0
        h.sample(2.0)
        assert h.quantile(1.0) == 2.0

    def test_flatten_rows_opt_in_only(self):
        group = StatGroup("dev")
        group.histogram("plain").sample(5.0)
        group.histogram("rich", track_quantiles=True).sample(5.0)
        flat = dict(group.flatten())
        assert "dev.plain.p50" not in flat  # golden shape untouched
        assert flat["dev.rich.p50"] == 5.0
        assert flat["dev.rich.p95"] == 5.0
        assert flat["dev.rich.p99"] == 5.0

    @settings(max_examples=30)
    @given(values=st.lists(st.floats(min_value=0.001, max_value=1e6,
                                     allow_nan=False),
                           min_size=1, max_size=60),
           q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_observed_range(self, values, q):
        h = Histogram("x", track_quantiles=True)
        for v in values:
            h.sample(v)
        estimate = h.quantile(q)
        assert min(values) <= estimate <= max(values)


class TestStatGroup:
    def test_scalar_reuse(self):
        group = StatGroup("comp")
        a = group.scalar("count")
        b = group.scalar("count")
        assert a is b

    def test_type_conflict(self):
        group = StatGroup("comp")
        group.scalar("x")
        with pytest.raises(TypeError):
            group.histogram("x")

    def test_flatten_names(self):
        group = StatGroup("sys.cache")
        group.scalar("hits").inc(3)
        group.histogram("lat").sample(10)
        flat = dict(group.flatten())
        assert flat["sys.cache.hits"] == 3
        assert flat["sys.cache.lat.count"] == 1

    def test_reset_all(self):
        group = StatGroup("c")
        group.scalar("a").inc(5)
        group.histogram("b").sample(1)
        group.reset()
        assert group["a"].value == 0
        assert group["b"].count == 0

    def test_contains(self):
        group = StatGroup("c")
        group.scalar("x")
        assert "x" in group
        assert "y" not in group


class TestDirtyFlagSnapshots:
    """flatten() memoization: clean groups never re-walk their stats."""

    def test_mutation_marks_group_dirty(self):
        group = StatGroup("c")
        counter = group.scalar("hits")
        group.flatten()
        assert not group.dirty
        counter.inc()
        assert group.dirty

    def test_flatten_cached_until_dirty(self):
        group = StatGroup("c")
        counter = group.scalar("hits")
        counter.inc(3)
        first = group.flatten()
        assert group.flatten() is first  # served from cache
        counter.inc()
        second = group.flatten()
        assert second is not first
        assert dict(second)["c.hits"] == 4

    def test_generation_tracks_observable_changes(self):
        group = StatGroup("c")
        counter = group.scalar("hits")
        group.flatten()
        gen = group.generation
        group.flatten()
        assert group.generation == gen  # cached: nothing new observable
        counter.inc()
        group.flatten()
        assert group.generation == gen + 1

    def test_reset_serves_pristine_snapshot(self):
        group = StatGroup("c")
        counter = group.scalar("hits")
        histogram = group.histogram("lat")
        pristine = group.flatten()  # computed before any mutation
        counter.inc(7)
        histogram.sample(3)
        assert dict(group.flatten())["c.hits"] == 7
        group.reset()
        assert not group.dirty
        # After reset the shared pristine rows are served without a walk.
        assert group.flatten() is pristine
        assert dict(pristine)["c.hits"] == 0

    def test_late_registration_invalidates_caches(self):
        group = StatGroup("c")
        group.scalar("a").inc()
        group.flatten()
        group.scalar("b")  # new stat after a snapshot was cached
        flat = dict(group.flatten())
        assert set(flat) == {"c.a", "c.b"}

    def test_late_registration_never_poisons_pristine_rows(self):
        """Regression: mutate -> flatten -> register -> flatten must not
        capture the mutated values as the shared pristine snapshot --
        a later reset() would then serve stale non-zero rows."""
        group = StatGroup("c")
        counter = group.scalar("a")
        counter.inc(5)
        group.flatten()  # clears dirty; group is clean but NOT pristine
        group.scalar("b")  # late registration drops the caches
        group.flatten()  # must not be captured as pristine
        group.reset()
        flat = dict(group.flatten())
        assert flat == {"c.a": 0, "c.b": 0}
        assert counter.value == 0

    def test_direct_stat_reset_marks_dirty(self):
        group = StatGroup("c")
        counter = group.scalar("a")
        counter.inc(5)
        group.flatten()
        counter.reset()
        assert dict(group.flatten())["c.a"] == 0

    def test_standalone_stats_do_not_crash(self):
        # Scalars/Histograms built outside a group mark a shared sink.
        s = Scalar("x")
        s.inc()
        h = Histogram("y")
        h.sample(1)
        assert s.value == 1 and h.count == 1


class TestCollectStats:
    def test_full_system_snapshot(self):
        result = run_gemm(SystemConfig.table2_baseline(), 64, 64, 64)
        assert result.component_stats  # non-empty
        system = AcceSysSystem(SystemConfig.table2_baseline())
        flat = collect_stats(system)
        assert any("membus" in key for key in flat)
        assert any("utlb" in key for key in flat)

    def test_devmem_system_snapshot(self):
        system = AcceSysSystem(SystemConfig.devmem_system())
        flat = collect_stats(system)
        assert any("devmem" in key for key in flat)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) <= 2

    def test_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [1234567.0], [1.5], [0]])
        assert "1.230e-04" in text
        assert "1.235e+06" in text
        assert "1.500" in text
