"""Unit tests for the Transaction type."""

import numpy as np
import pytest

from repro.sim.transaction import MemCmd, Transaction


class TestConstruction:
    def test_read_constructor(self):
        txn = Transaction.read(0x1000, 64, source="cpu")
        assert txn.is_read and not txn.is_write
        assert txn.addr == 0x1000
        assert txn.size == 64
        assert txn.source == "cpu"

    def test_write_constructor(self):
        data = np.arange(16, dtype=np.uint8)
        txn = Transaction.write(0x2000, 16, data)
        assert txn.is_write and not txn.is_read
        assert txn.data is data

    def test_ids_unique(self):
        a = Transaction.read(0, 1)
        b = Transaction.read(0, 1)
        assert a.id != b.id

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Transaction.read(0, 0)

    def test_negative_addr_rejected(self):
        with pytest.raises(ValueError):
            Transaction.read(-4, 4)

    def test_payload_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Transaction.write(0, 8, np.zeros(4, dtype=np.uint8))

    def test_cmd_predicates(self):
        assert MemCmd.READ.is_read and not MemCmd.READ.is_write
        assert MemCmd.WRITE.is_write and not MemCmd.WRITE.is_read


class TestGranularity:
    def test_num_lines_aligned(self):
        assert Transaction.read(0, 128).num_lines(64) == 2

    def test_num_lines_straddles(self):
        # [60, 68) touches lines 0 and 1
        assert Transaction.read(60, 8).num_lines(64) == 2

    def test_num_lines_single_byte(self):
        assert Transaction.read(63, 1).num_lines(64) == 1

    def test_num_packets(self):
        assert Transaction.read(0, 1024).num_packets(256) == 4
        assert Transaction.read(0, 1025).num_packets(256) == 5

    def test_num_packets_bad_size(self):
        with pytest.raises(ValueError):
            Transaction.read(0, 64).num_packets(0)

    def test_pages_touched(self):
        txn = Transaction.read(4096 - 8, 16)
        assert list(txn.pages_touched(4096)) == [0, 1]

    def test_pages_touched_single(self):
        txn = Transaction.read(8192, 4096)
        assert list(txn.pages_touched(4096)) == [2]

    def test_end_addr(self):
        assert Transaction.read(0x100, 0x40).end_addr == 0x140


class TestLatency:
    def test_latency_none_until_complete(self):
        txn = Transaction.read(0, 64)
        assert txn.latency is None
        txn.issue_tick = 100
        assert txn.latency is None
        txn.complete_tick = 350
        assert txn.latency == 250

    def test_repr_mentions_command(self):
        assert "read" in repr(Transaction.read(0, 64))
        assert "write" in repr(Transaction.write(0, 64))
