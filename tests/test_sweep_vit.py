"""ViT runner registration, cache round-trip, and the experiment registry."""

import pytest

from repro import SystemConfig, ViTResult
from repro.sweep import (
    RUNNERS,
    SWEEPS,
    SweepPoint,
    SweepSpec,
    build_sweep,
    point_key,
    resolve_runner,
    run_sweep,
)
from repro.workloads.vit import ViTConfig

TINY_VIT = ViTConfig("sweep-tiny", hidden=64, layers=1, heads=4,
                     image_size=64, patch_size=16)


def tiny_vit_spec(name="vit-test") -> SweepSpec:
    systems = {
        "host": SystemConfig.pcie_8gb(),
        "devmem": SystemConfig.devmem_system(),
    }
    points = [
        SweepPoint(key=key, config=config, params={"model": TINY_VIT})
        for key, config in systems.items()
    ]
    return SweepSpec(name=name, points=points, runner="vit")


def vit_fields(result: ViTResult) -> tuple:
    return (
        result.config_name,
        result.model_name,
        result.total_ticks,
        result.gemm_ticks,
        result.nongemm_ticks,
        dict(result.op_ticks),
        result.memo_hits,
    )


class TestViTRunnerRegistration:
    def test_registered(self):
        assert "vit" in RUNNERS
        assert resolve_runner("vit").name == "vit"

    def test_spec_accepts_vit_runner(self):
        spec = tiny_vit_spec()
        assert spec.runner == "vit"

    def test_vit_point_keys_hash_vitconfig_params(self):
        base = SystemConfig.pcie_8gb()
        point_a = SweepPoint(key=1, config=base, params={"model": TINY_VIT})
        other = ViTConfig("sweep-tiny2", hidden=64, layers=2, heads=4,
                          image_size=64, patch_size=16)
        point_b = SweepPoint(key=1, config=base, params={"model": other})
        assert point_key(point_a, "vit") != point_key(point_b, "vit")


class TestViTCacheRoundTrip:
    def test_replay_is_bit_identical(self, tmp_path):
        spec = tiny_vit_spec()
        live = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert (live.hits, live.misses) == (0, 2)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached
        for fresh, cached in zip(live.outcomes, replay.outcomes):
            assert fresh.record == cached.record
            assert vit_fields(fresh.result) == vit_fields(cached.result)
            assert isinstance(cached.result, ViTResult)

    def test_op_ticks_and_memo_hits_survive_encoding(self, tmp_path):
        spec = tiny_vit_spec()
        live = run_sweep(spec, workers=1, cache_dir=tmp_path)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        for key in live.results():
            fresh = live.results()[key]
            cached = replay.results()[key]
            assert fresh.op_ticks == cached.op_ticks
            assert fresh.memo_hits == cached.memo_hits
            assert fresh.total_ticks == cached.total_ticks
            assert sum(cached.op_ticks.values()) == (
                cached.gemm_ticks + cached.nongemm_ticks
            )

    def test_parallel_equals_serial(self, tmp_path):
        spec = tiny_vit_spec()
        serial = run_sweep(spec, workers=1, cache_dir=tmp_path / "s")
        parallel = run_sweep(spec, workers=2, cache_dir=tmp_path / "p")
        serial_records = {o.key: o.record for o in serial.outcomes}
        parallel_records = {o.key: o.record for o in parallel.outcomes}
        assert serial_records == parallel_records


class TestGemmTable4RoundTrip:
    def test_table4_survives_the_cache(self, tmp_path):
        spec = build_sweep("tab4-translation", sizes=(32,))
        live = run_sweep(spec, workers=1, cache_dir=tmp_path)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached
        fresh = live.results()[32].table4
        cached = replay.results()[32].table4
        assert fresh is not None
        assert fresh == cached

    def test_devmem_table4_none_round_trips(self, tmp_path):
        spec = build_sweep("access-modes", size=16)
        run_sweep(spec, workers=1, cache_dir=tmp_path)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached
        assert replay.results()["DevMem"].table4 is None
        assert replay.results()["DC"].table4 is not None


class TestFig7SweepReplay:
    def test_fig7_replays_entirely_from_cache(self, tmp_path):
        """Acceptance: the fig7 sweep run twice against a cache dir
        replays every transformer point from cache, bit-identically."""
        spec = build_sweep("fig7-transformer", models=("base",),
                          dim_scale=0.0625)
        live = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert live.misses == len(spec)
        replay = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert replay.fully_cached
        assert {o.key: o.record for o in live.outcomes} == {
            o.key: o.record for o in replay.outcomes
        }


class TestExperimentRegistry:
    REQUIRED = {
        "pcie-bandwidth", "packet-size", "fig4-packet-grid",
        "fig5-memory", "fig6a-mem-bandwidth", "fig6b-mem-latency",
        "fig7-transformer", "fig8-gemm-split", "fig9-tradeoff",
        "tab4-translation", "ablation-dataflow", "ablation-smmu",
        "access-modes", "ext-cxl-gemm", "ext-cxl-vit",
    }

    def test_all_figures_registered(self):
        assert self.REQUIRED <= set(SWEEPS)

    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_every_factory_builds(self, name):
        spec = build_sweep(name)
        assert len(spec) > 0
        assert spec.name == name

    def test_fig8_and_fig9_share_cache_keys(self):
        fig8 = build_sweep("fig8-gemm-split")
        fig9 = build_sweep("fig9-tradeoff")
        keys8 = {point_key(p, fig8.runner) for p in fig8.points}
        keys9 = {point_key(p, fig9.runner) for p in fig9.points}
        assert keys8 == keys9

    def test_fig7_covers_models_by_system_grid(self):
        spec = build_sweep("fig7-transformer", models=("base",))
        assert {key for key, _name in (p.key for p in spec.points)} == {"base"}
        assert {name for _key, name in (p.key for p in spec.points)} == {
            "PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem"
        }
