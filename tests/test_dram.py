"""Unit and property tests for the DRAM bank-state timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.addr_range import AddrRange
from repro.memory.dram import DRAMController, DRAMTimings
from repro.memory.dram.devices import (
    DDR3_1600,
    DDR4_2400,
    DDR5_3200,
    GDDR6,
    HBM2,
    MEMORY_PRESETS,
    preset_by_name,
)
from repro.memory.physmem import PhysicalMemory
from repro.sim.eventq import Simulator
from repro.sim.ticks import ns, ticks_to_seconds
from repro.sim.transaction import Transaction


def run_stream(timings, total_bytes, txn_size=4096, read=True):
    """Stream ``total_bytes`` sequentially; return (ticks, controller)."""
    sim = Simulator()
    ctrl = DRAMController(
        sim, "dram", timings, AddrRange(0, max(total_bytes * 2, 1 << 20))
    )
    outstanding = {"n": 0}

    def on_done(txn):
        outstanding["n"] -= 1

    addr = 0
    while addr < total_bytes:
        size = min(txn_size, total_bytes - addr)
        cmd = Transaction.read(addr, size) if read else Transaction.write(addr, size)
        ctrl.send(cmd, on_done)
        outstanding["n"] += 1
        addr += size
    sim.run()
    assert outstanding["n"] == 0
    return sim.now, ctrl


class TestPresets:
    def test_table3_bandwidths(self):
        # Bandwidths from Table III of the paper, in GB/s.
        expected = {
            "DDR3-1600": 12.8,
            "DDR4-2400": 19.2,
            "DDR5-3200": 25.6,
            "HBM2": 64.0,
            "GDDR6": 32.0,
        }
        for name, gbs in expected.items():
            preset = preset_by_name(name)
            assert preset.total_bandwidth == pytest.approx(gbs * 1e9)

    def test_table3_data_rates(self):
        assert DDR3_1600.data_rate_mts == 1600
        assert DDR4_2400.data_rate_mts == 2400
        assert DDR5_3200.data_rate_mts == 3200
        assert HBM2.data_rate_mts == 2000
        assert GDDR6.data_rate_mts == 2000

    def test_burst_bytes_are_cacheline_compatible(self):
        for preset in MEMORY_PRESETS.values():
            assert preset.burst_bytes in (32, 64, 128)

    def test_preset_lookup_case_insensitive(self):
        assert preset_by_name("hbm2") is HBM2

    def test_preset_lookup_unknown(self):
        with pytest.raises(KeyError):
            preset_by_name("SDRAM-66")

    def test_describe(self):
        text = HBM2.describe()
        assert "HBM2" in text and "64.0 GB/s" in text

    def test_invalid_timings_rejected(self):
        with pytest.raises(ValueError):
            DRAMTimings("bad", data_rate_mts=0, channels=1,
                        data_width_bits=64, burst_length=8, banks=8)
        with pytest.raises(ValueError):
            DRAMTimings("bad", data_rate_mts=1600, channels=1,
                        data_width_bits=63, burst_length=8, banks=8)
        with pytest.raises(ValueError):
            DRAMTimings("bad", data_rate_mts=1600, channels=1,
                        data_width_bits=64, burst_length=8, banks=8,
                        row_buffer_bytes=3000)


class TestStreamingBandwidth:
    def test_sequential_stream_approaches_peak(self):
        """A long sequential stream should reach >60% of peak bandwidth."""
        total = 8 << 20
        ticks, _ = run_stream(DDR4_2400, total)
        achieved = total / ticks_to_seconds(ticks)
        assert achieved > 0.6 * DDR4_2400.total_bandwidth
        assert achieved <= DDR4_2400.total_bandwidth * 1.01

    def test_technology_ordering(self):
        """Faster technologies finish the same stream sooner."""
        total = 2 << 20
        t_ddr3, _ = run_stream(DDR3_1600, total)
        t_ddr4, _ = run_stream(DDR4_2400, total)
        t_hbm, _ = run_stream(HBM2, total)
        assert t_ddr3 > t_ddr4 > t_hbm

    def test_row_hits_dominate_sequential(self):
        _, ctrl = run_stream(DDR4_2400, 1 << 20)
        assert ctrl.row_hit_rate > 0.9

    def test_multi_channel_speedup(self):
        """Two channels should beat one channel of the same device."""
        one_ch = DDR5_3200
        half = DRAMTimings(
            name="DDR5-1ch",
            data_rate_mts=one_ch.data_rate_mts,
            channels=1,
            data_width_bits=one_ch.data_width_bits,
            burst_length=one_ch.burst_length,
            banks=one_ch.banks,
            row_buffer_bytes=one_ch.row_buffer_bytes,
        )
        t_two, _ = run_stream(one_ch, 1 << 20)
        t_one, _ = run_stream(half, 1 << 20)
        assert t_one > 1.5 * t_two


class TestBankBehaviour:
    def test_random_access_slower_than_sequential(self):
        timings = DDR4_2400
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", timings, AddrRange(0, 1 << 28))
        rng = np.random.default_rng(42)
        # Random 64B reads spread over many rows in the SAME bank region.
        row_span = timings.row_buffer_bytes * timings.banks
        addrs = (rng.integers(0, (1 << 28) // row_span, size=200) * row_span).tolist()
        for addr in addrs:
            ctrl.send(Transaction.read(int(addr), 64), lambda t: None)
        sim.run()
        t_random = sim.now

        t_seq, _ = run_stream(timings, 200 * 64, txn_size=64)
        assert t_random > t_seq

    def test_row_miss_penalty_recorded(self):
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", DDR4_2400, AddrRange(0, 1 << 26))
        stride = DDR4_2400.row_buffer_bytes * DDR4_2400.banks
        for i in range(10):
            ctrl.send(Transaction.read(i * stride, 64), lambda t: None)
        sim.run()
        assert ctrl.stats["row_misses"].value == 10
        assert ctrl.stats["row_hits"].value == 0

    def test_same_row_hits_after_first(self):
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", DDR4_2400, AddrRange(0, 1 << 20))
        for i in range(10):
            ctrl.send(Transaction.read(i * 64, 64), lambda t: None)
        sim.run()
        assert ctrl.stats["row_misses"].value == 1
        assert ctrl.stats["row_hits"].value == 9

    def test_out_of_range_rejected(self):
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", DDR4_2400, AddrRange(0, 4096))
        with pytest.raises(ValueError):
            ctrl.send(Transaction.read(1 << 20, 64), lambda t: None)

    def test_functional_backing(self):
        sim = Simulator()
        store = PhysicalMemory(AddrRange(0, 1 << 20))
        ctrl = DRAMController(
            sim, "dram", DDR4_2400, AddrRange(0, 1 << 20), backing=store
        )
        payload = np.arange(128, dtype=np.uint8)
        ctrl.send(Transaction.write(4096, 128, payload), lambda t: None)
        got = []
        ctrl.send(Transaction.read(4096, 128), lambda t: got.append(t.data))
        sim.run()
        np.testing.assert_array_equal(got[0], payload)


class TestTimingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        txn_size=st.sampled_from([64, 256, 1024, 4096]),
        total_kb=st.integers(min_value=4, max_value=64),
    )
    def test_time_monotonic_in_volume(self, txn_size, total_kb):
        """Streaming more data never takes less time."""
        small, _ = run_stream(DDR4_2400, total_kb * 1024 // 2, txn_size=txn_size)
        large, _ = run_stream(DDR4_2400, total_kb * 1024, txn_size=txn_size)
        assert large >= small

    @settings(max_examples=10, deadline=None)
    @given(total_kb=st.integers(min_value=8, max_value=64))
    def test_reads_and_writes_symmetric(self, total_kb):
        t_read, _ = run_stream(DDR4_2400, total_kb * 1024, read=True)
        t_write, _ = run_stream(DDR4_2400, total_kb * 1024, read=False)
        assert t_read == t_write

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_bandwidth_never_exceeds_peak(self, seed):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        ctrl = DRAMController(sim, "dram", HBM2, AddrRange(0, 1 << 24))
        total = 0
        addr = 0
        for _ in range(50):
            size = int(rng.integers(1, 64)) * 64
            ctrl.send(Transaction.read(addr, size), lambda t: None)
            addr += size
            total += size
        sim.run()
        achieved = total / ticks_to_seconds(sim.now)
        assert achieved <= HBM2.total_bandwidth * 1.01
