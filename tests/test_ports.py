"""Unit tests for the TLM port building blocks."""

import pytest

from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget, PipelinedLink, QueueStation
from repro.sim.simobject import ClockedObject, SimObject
from repro.sim.ticks import GHZ, ns
from repro.sim.transaction import Transaction


def _collect(results):
    def on_complete(txn):
        results.append((txn.id, txn))

    return on_complete


class TestSimObject:
    def test_names_and_repr(self):
        sim = Simulator()
        obj = SimObject(sim, "system.thing")
        assert obj.name == "system.thing"
        assert "system.thing" in repr(obj)

    def test_now_property(self):
        sim = Simulator()
        obj = SimObject(sim, "o")
        sim.schedule(42, lambda: None)
        sim.run()
        assert obj.now == 42

    def test_clocked_object_cycles(self):
        sim = Simulator()
        obj = ClockedObject(sim, "c", 1 * GHZ)
        assert obj.clock_period == 1000
        assert obj.cycles(3) == 3000
        assert obj.ticks_to_cycles(2500) == 2.5

    def test_next_edge(self):
        sim = Simulator()
        obj = ClockedObject(sim, "c", 1 * GHZ)
        assert obj.next_edge(0) == 0
        assert obj.next_edge(1) == 1000
        assert obj.next_edge(1000) == 1000
        assert obj.next_edge(1001) == 2000


class TestFixedLatencyTarget:
    def test_completes_after_latency(self):
        sim = Simulator()
        target = FixedLatencyTarget(sim, "t", latency=ns(5))
        done = []
        target.send(Transaction.read(0, 64), lambda txn: done.append(sim.now))
        sim.run()
        assert done == [ns(5)]

    def test_counts_transactions(self):
        sim = Simulator()
        target = FixedLatencyTarget(sim, "t", latency=1)
        for _ in range(3):
            target.send(Transaction.read(0, 64), lambda txn: None)
        sim.run()
        assert target.stats["transactions"].value == 3


class TestQueueStation:
    def test_fifo_service(self):
        sim = Simulator()
        station = QueueStation(sim, "q", service_fn=lambda txn: 100)
        completions = []
        for i in range(3):
            station.send(
                Transaction.read(i * 64, 64),
                lambda txn: completions.append(sim.now),
            )
        sim.run()
        # Back-to-back service: 100, 200, 300.
        assert completions == [100, 200, 300]

    def test_idle_gap_resets_server(self):
        sim = Simulator()
        station = QueueStation(sim, "q", service_fn=lambda txn: 100)
        completions = []
        station.send(Transaction.read(0, 64), lambda txn: completions.append(sim.now))
        sim.run()
        sim.schedule(900, lambda: station.send(
            Transaction.read(64, 64), lambda txn: completions.append(sim.now)
        ))
        sim.run()
        assert completions == [100, 1100]

    def test_forwarding_chain(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=50)
        station = QueueStation(sim, "q", service_fn=lambda t: 100, forward_to=sink)
        completions = []
        station.send(Transaction.read(0, 64), lambda txn: completions.append(sim.now))
        sim.run()
        assert completions == [150]

    def test_requires_service_definition(self):
        sim = Simulator()
        station = QueueStation(sim, "q")
        with pytest.raises(NotImplementedError):
            station.send(Transaction.read(0, 64), lambda txn: None)

    def test_busy_stat_accumulates(self):
        sim = Simulator()
        station = QueueStation(sim, "q", service_fn=lambda t: 7)
        for _ in range(4):
            station.send(Transaction.read(0, 64), lambda txn: None)
        sim.run()
        assert station.stats["busy_ticks"].value == 28


class TestPipelinedLink:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        link = PipelinedLink(
            sim, "l", serialize_fn=lambda txn: txn.size, prop_delay=10
        )
        completions = []
        link.send(Transaction.read(0, 100), lambda txn: completions.append(sim.now))
        sim.run()
        assert completions == [110]

    def test_pipelining_overlaps_propagation(self):
        sim = Simulator()
        link = PipelinedLink(
            sim, "l", serialize_fn=lambda txn: 100, prop_delay=1000
        )
        completions = []
        for _ in range(2):
            link.send(Transaction.read(0, 64), lambda txn: completions.append(sim.now))
        sim.run()
        # Second starts serializing at 100, arrives 100+100+1000.
        assert completions == [1100, 1200]

    def test_bytes_stat(self):
        sim = Simulator()
        link = PipelinedLink(sim, "l", serialize_fn=lambda t: 1)
        link.send(Transaction.read(0, 640), lambda txn: None)
        sim.run()
        assert link.stats["bytes"].value == 640

    def test_forwarding(self):
        sim = Simulator()
        sink = FixedLatencyTarget(sim, "sink", latency=5)
        link = PipelinedLink(
            sim, "l", serialize_fn=lambda t: 10, prop_delay=3, forward_to=sink
        )
        completions = []
        link.send(Transaction.read(0, 64), lambda txn: completions.append(sim.now))
        sim.run()
        assert completions == [18]

    def test_backlog(self):
        sim = Simulator()
        link = PipelinedLink(sim, "l", serialize_fn=lambda t: 500)
        link.send(Transaction.read(0, 64), lambda txn: None)
        assert link.backlog_ticks == 500
