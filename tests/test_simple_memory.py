"""Unit tests for the fixed latency/bandwidth memory model."""

import numpy as np
import pytest

from repro.memory.addr_range import AddrRange
from repro.memory.physmem import PhysicalMemory
from repro.memory.simple import SimpleMemory
from repro.sim.eventq import Simulator
from repro.sim.ticks import ns, serialization_ticks
from repro.sim.transaction import Transaction

GB = 10**9


def make_mem(latency=ns(30), bandwidth=10 * GB, size=1 << 20, backing=False):
    sim = Simulator()
    store = PhysicalMemory(AddrRange(0, size)) if backing else None
    mem = SimpleMemory(sim, "mem", AddrRange(0, size), latency, bandwidth, store)
    return sim, mem


class TestTiming:
    def test_single_access_latency(self):
        sim, mem = make_mem(latency=ns(30), bandwidth=10 * GB)
        done = []
        mem.send(Transaction.read(0, 64), lambda t: done.append(sim.now))
        sim.run()
        expected = serialization_ticks(64, 10 * GB) + ns(30)
        assert done == [expected]

    def test_bandwidth_limits_back_to_back(self):
        sim, mem = make_mem(latency=0, bandwidth=1 * GB)
        done = []
        for i in range(3):
            mem.send(
                Transaction.read(i * 1024, 1024), lambda t: done.append(sim.now)
            )
        sim.run()
        one = serialization_ticks(1024, 1 * GB)
        assert done == [one, 2 * one, 3 * one]

    def test_latency_pipelines(self):
        # With huge latency but fast port, completions are spaced by
        # serialization, not by latency.
        sim, mem = make_mem(latency=ns(1000), bandwidth=100 * GB)
        done = []
        for i in range(2):
            mem.send(Transaction.read(i * 64, 64), lambda t: done.append(sim.now))
        sim.run()
        gap = done[1] - done[0]
        assert gap == serialization_ticks(64, 100 * GB)

    def test_out_of_range_rejected(self):
        sim, mem = make_mem(size=4096)
        with pytest.raises(ValueError):
            mem.send(Transaction.read(8192, 64), lambda t: None)


class TestFunctional:
    def test_write_then_read_data(self):
        sim, mem = make_mem(backing=True)
        payload = np.arange(64, dtype=np.uint8)
        mem.send(Transaction.write(256, 64, payload), lambda t: None)
        results = []
        mem.send(Transaction.read(256, 64), lambda t: results.append(t.data))
        sim.run()
        np.testing.assert_array_equal(results[0], payload)

    def test_stats(self):
        sim, mem = make_mem()
        mem.send(Transaction.read(0, 64), lambda t: None)
        mem.send(Transaction.write(64, 128), lambda t: None)
        sim.run()
        assert mem.stats["reads"].value == 1
        assert mem.stats["writes"].value == 1
        assert mem.stats["bytes_read"].value == 64
        assert mem.stats["bytes_written"].value == 128
