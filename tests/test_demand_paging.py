"""Tests for SMMU demand paging (translation fault handling)."""

import pytest

from repro import SystemConfig
from repro.core.system import AcceSysSystem
from repro.sim.ticks import ns, us
from repro.sim.transaction import Transaction
from repro.smmu.page_table import PageFault


def make_system():
    return AcceSysSystem(SystemConfig.table2_baseline())


UNMAPPED_VA = 0x3000_0000


class TestDemandPaging:
    def test_unmapped_faults_without_handler(self):
        system = make_system()
        with pytest.raises(PageFault):
            system.smmu.translate(
                Transaction.read(UNMAPPED_VA, 64), lambda t: None
            )
            system.run()

    def test_fault_is_resolved_and_translation_completes(self):
        system = make_system()
        system.driver.enable_demand_paging(system.smmu, fault_latency=us(3))
        done = []
        system.smmu.translate(
            Transaction.read(UNMAPPED_VA, 64),
            lambda t: done.append((system.now, t)),
        )
        system.run()
        assert done, "translation never completed"
        when, txn = done[0]
        assert when >= us(3)  # paid the fault path
        assert txn.is_translated
        assert system.page_table.is_mapped(UNMAPPED_VA)
        assert system.smmu.stats["page_faults"].value == 1

    def test_second_access_takes_no_fault(self):
        system = make_system()
        system.driver.enable_demand_paging(system.smmu, fault_latency=us(3))
        system.smmu.translate(Transaction.read(UNMAPPED_VA, 64), lambda t: None)
        system.run()
        before = system.now
        done = []
        system.smmu.translate(
            Transaction.read(UNMAPPED_VA, 64), lambda t: done.append(system.now)
        )
        system.run()
        assert system.smmu.stats["page_faults"].value == 1
        assert done[0] - before < us(1)

    def test_multi_page_transaction_faults_each_page(self):
        system = make_system()
        system.driver.enable_demand_paging(system.smmu, fault_latency=ns(100))
        done = []
        system.smmu.translate(
            Transaction.read(UNMAPPED_VA, 3 * 4096), lambda t: done.append(t)
        )
        system.run()
        assert done
        assert system.smmu.stats["page_faults"].value == 3
        for page in range(3):
            assert system.page_table.is_mapped(UNMAPPED_VA + page * 4096)

    def test_gemm_runs_entirely_on_demand(self):
        """Launch a GEMM against unpinned buffers: every page faults in."""
        system = make_system()
        system.driver.enable_demand_paging(system.smmu, fault_latency=ns(500))
        done = []
        size = 32
        system.driver.launch_gemm(
            size, size, size,
            UNMAPPED_VA, UNMAPPED_VA + 0x10_0000, UNMAPPED_VA + 0x20_0000,
            lambda job, stats: done.append(stats),
        )
        system.run()
        assert done, "demand-paged GEMM never finished"
        assert system.smmu.stats["page_faults"].value > 0

    def test_demand_paging_requires_page_table(self):
        system = AcceSysSystem(SystemConfig.table2_baseline(smmu=None))
        with pytest.raises(RuntimeError):
            system.driver.enable_demand_paging(None)
