"""Unit and property tests for the sparse backing store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.addr_range import AddrRange
from repro.memory.physmem import PhysicalMemory


def make_mem(size=1 << 20, frame=4096):
    return PhysicalMemory(AddrRange(0, size), frame_size=frame)


class TestBasics:
    def test_unwritten_reads_zero(self):
        mem = make_mem()
        assert not mem.read(0, 64).any()

    def test_write_then_read(self):
        mem = make_mem()
        data = np.arange(64, dtype=np.uint8)
        mem.write(128, data)
        np.testing.assert_array_equal(mem.read(128, 64), data)

    def test_write_crossing_frame_boundary(self):
        mem = make_mem(frame=4096)
        data = np.arange(256, dtype=np.uint8)
        mem.write(4096 - 100, data)
        np.testing.assert_array_equal(mem.read(4096 - 100, 256), data)

    def test_read_crossing_unallocated_frame(self):
        mem = make_mem(frame=4096)
        mem.write(0, np.full(16, 7, dtype=np.uint8))
        got = mem.read(0, 8192)
        assert got[:16].sum() == 7 * 16
        assert not got[16:].any()

    def test_out_of_range_rejected(self):
        mem = make_mem(size=4096)
        with pytest.raises(ValueError):
            mem.read(4090, 16)
        with pytest.raises(ValueError):
            mem.write(4095, np.zeros(2, dtype=np.uint8))

    def test_sparse_allocation(self):
        mem = make_mem(size=1 << 30, frame=1 << 16)
        assert mem.allocated_bytes == 0
        mem.write(0, np.zeros(16, dtype=np.uint8))
        assert mem.allocated_bytes == 1 << 16

    def test_bad_frame_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(AddrRange(0, 64), frame_size=100)


class TestTypedAccess:
    def test_array_round_trip(self):
        mem = make_mem()
        arr = np.arange(24, dtype=np.int32).reshape(4, 6)
        mem.write_array(512, arr)
        np.testing.assert_array_equal(mem.read_array(512, (4, 6), np.int32), arr)

    def test_non_contiguous_input(self):
        mem = make_mem()
        arr = np.arange(16, dtype=np.int32).reshape(4, 4).T
        mem.write_array(0, arr)
        np.testing.assert_array_equal(mem.read_array(0, (4, 4), np.int32), arr)


class TestProperties:
    @settings(max_examples=50)
    @given(
        addr=st.integers(min_value=0, max_value=60000),
        data=st.binary(min_size=1, max_size=512),
    )
    def test_read_your_writes(self, addr, data):
        mem = PhysicalMemory(AddrRange(0, 1 << 16), frame_size=1024)
        payload = np.frombuffer(data, dtype=np.uint8)
        if addr + len(payload) > 1 << 16:
            return
        mem.write(addr, payload)
        np.testing.assert_array_equal(mem.read(addr, len(payload)), payload)

    @settings(max_examples=25)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4000),
                st.binary(min_size=1, max_size=64),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_matches_flat_reference(self, writes):
        mem = PhysicalMemory(AddrRange(0, 8192), frame_size=512)
        reference = np.zeros(8192, dtype=np.uint8)
        for addr, data in writes:
            payload = np.frombuffer(data, dtype=np.uint8)
            mem.write(addr, payload)
            reference[addr : addr + len(payload)] = payload
        np.testing.assert_array_equal(mem.read(0, 8192), reference)
