"""Unit tests for the SMMU and the page-table walker."""

import pytest

from repro.sim.eventq import Simulator
from repro.sim.ports import FixedLatencyTarget
from repro.sim.ticks import ns
from repro.sim.transaction import Transaction
from repro.smmu import SMMU, PageTable, PageTableWalker, SMMUConfig
from repro.smmu.page_table import PAGE_SIZE, PageFault

TABLE_BASE = 0x8000_0000
VA_BASE = 0x10_0000
PA_BASE = 0x40_0000


def make_smmu(mem_latency=ns(100), utlb=32, tlb=4096, map_bytes=1 << 20, **cfg_kw):
    sim = Simulator()
    mem = FixedLatencyTarget(sim, "mem", latency=mem_latency)
    table = PageTable(TABLE_BASE)
    table.map_range(VA_BASE, PA_BASE, map_bytes)
    config = SMMUConfig(utlb_entries=utlb, tlb_entries=tlb, **cfg_kw)
    smmu = SMMU(sim, "smmu", config, table, mem)
    return sim, smmu, table, mem


def do_translate(sim, smmu, addr, size):
    done = []
    txn = Transaction.read(addr, size)
    smmu.translate(txn, lambda t: done.append((sim.now, t)))
    sim.run()
    return done[0]


class TestWalker:
    def test_cold_walk_fetches_all_levels(self):
        sim, smmu, table, mem = make_smmu()
        results = []
        smmu.walker.walk(VA_BASE // PAGE_SIZE, lambda v, l, t: results.append((v, l, t)))
        sim.run()
        vpn, levels, ticks = results[0]
        assert levels == 4
        assert ticks >= 4 * ns(100)
        assert mem.stats["transactions"].value == 4

    def test_walk_cache_skips_interior_levels(self):
        sim, smmu, table, mem = make_smmu()
        results = []
        vpn0 = VA_BASE // PAGE_SIZE
        smmu.walker.walk(vpn0, lambda v, l, t: results.append(l))
        sim.run()
        # Second walk to the adjacent page shares all interior nodes.
        smmu.walker.walk(vpn0 + 1, lambda v, l, t: results.append(l))
        sim.run()
        assert results[0] == 4
        assert results[1] == 1  # only the leaf PTE fetch

    def test_walks_serialize(self):
        sim, smmu, table, mem = make_smmu(mem_latency=ns(100))
        done = []
        vpn0 = VA_BASE // PAGE_SIZE
        smmu.walker.walk(vpn0, lambda v, l, t: done.append(sim.now))
        smmu.walker.walk(vpn0 + 1, lambda v, l, t: done.append(sim.now))
        sim.run()
        assert done[1] > done[0]

    def test_unmapped_walk_faults(self):
        sim, smmu, table, mem = make_smmu()
        with pytest.raises(PageFault):
            smmu.walker.walk(0xDEAD, lambda v, l, t: None)
            sim.run()


class TestTranslation:
    def test_translates_address(self):
        sim, smmu, _, _ = make_smmu()
        _, txn = do_translate(sim, smmu, VA_BASE + 0x123, 64)
        assert txn.vaddr == VA_BASE + 0x123
        assert txn.addr == PA_BASE + 0x123
        assert txn.paddr == PA_BASE + 0x123
        assert txn.is_translated

    def test_per_line_accounting(self):
        sim, smmu, _, _ = make_smmu()
        do_translate(sim, smmu, VA_BASE, 4096)  # 64 lines, one page
        assert smmu.utlb.lookups == 64
        assert smmu.utlb.misses == 1
        assert smmu.stats["translations"].value == 64

    def test_multi_page_transaction(self):
        sim, smmu, _, _ = make_smmu()
        do_translate(sim, smmu, VA_BASE, 3 * 4096)
        assert smmu.utlb.misses == 3
        assert smmu.utlb.lookups == 3 * 64

    def test_warm_translation_is_fast(self):
        sim, smmu, _, _ = make_smmu()
        t_cold, _ = do_translate(sim, smmu, VA_BASE, 64)
        before = sim.now
        t_warm, _ = do_translate(sim, smmu, VA_BASE, 64)
        assert (t_warm - before) < t_cold

    def test_tlb_hit_cheaper_than_walk(self):
        # Tiny uTLB (1 entry) forces uTLB misses; large main TLB catches them.
        sim, smmu, _, _ = make_smmu(utlb=1)
        do_translate(sim, smmu, VA_BASE, 64)          # cold: walk
        do_translate(sim, smmu, VA_BASE + 4096, 64)   # evicts page 0 from uTLB
        start = sim.now
        do_translate(sim, smmu, VA_BASE, 64)          # uTLB miss, main TLB hit
        elapsed = sim.now - start
        assert elapsed == smmu.config.tlb_latency
        assert smmu.walker.stats["walks"].value == 2

    def test_walk_count_matches_footprint(self):
        """With a large main TLB each page walks exactly once."""
        sim, smmu, _, _ = make_smmu(utlb=2)
        npages = 16
        for i in range(npages):
            do_translate(sim, smmu, VA_BASE + i * 4096, 4096)
        # Revisit: uTLB (2 entries) misses, but the main TLB absorbs them.
        for i in range(npages):
            do_translate(sim, smmu, VA_BASE + i * 4096, 4096)
        assert smmu.walker.stats["walks"].value == npages

    def test_small_main_tlb_thrashes(self):
        """When the footprint exceeds the main TLB, walks recur (Table IV)."""
        sim, smmu, _, _ = make_smmu(utlb=1, tlb=4)
        npages = 16
        for _ in range(2):
            for i in range(npages):
                do_translate(sim, smmu, VA_BASE + i * 4096, 4096)
        assert smmu.walker.stats["walks"].value > npages

    def test_unmapped_translation_faults(self):
        sim, smmu, _, _ = make_smmu()
        with pytest.raises(PageFault):
            do_translate(sim, smmu, 0xDEAD_0000, 64)

    def test_stall_accumulates(self):
        sim, smmu, _, _ = make_smmu()
        do_translate(sim, smmu, VA_BASE, 4096)
        assert smmu.stats["stall_ticks"].value > 0


class TestTable4Metrics:
    def test_metrics_shape(self):
        sim, smmu, table, _ = make_smmu(map_bytes=48 * 1024)
        for i in range(12):
            do_translate(sim, smmu, VA_BASE + i * 4096, 4096)
        metrics = smmu.table4_metrics(total_runtime_ticks=sim.now)
        assert metrics["memory_footprint_pages"] == 12
        assert metrics["translation_times"] == 12 * 64
        assert metrics["ptw_times"] == 12
        assert metrics["utlb_lookup_times"] == 12 * 64
        assert metrics["utlb_miss_times"] == 12
        assert 0 < metrics["trans_overhead_pct"] <= 100
        assert metrics["trans_mean_cycles"] > 1.0

    def test_overhead_zero_without_runtime(self):
        sim, smmu, _, _ = make_smmu()
        assert smmu.table4_metrics(0)["trans_overhead_pct"] == 0.0


class TestConfigValidation:
    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            SMMUConfig(page_size=3000)

    def test_line_must_divide_page(self):
        with pytest.raises(ValueError):
            SMMUConfig(line_size=48)
