"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_defaults(self):
        args = build_parser().parse_args(["gemm"])
        assert args.system == "Table2"
        assert args.size == 128
        assert not args.verify

    def test_vit_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vit", "--model", "colossal"])

    def test_sweep_kind_choices(self):
        args = build_parser().parse_args(["sweep", "--kind", "packet"])
        assert args.kind == "packet"


class TestCommands:
    def test_systems_lists_all(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem", "Table2"):
            assert name in out

    def test_gemm_runs_and_verifies(self, capsys):
        assert main(["gemm", "--size", "32", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "delivered" in out

    def test_gemm_translation_report(self, capsys):
        assert main(["gemm", "--size", "32", "--translation"]) == 0
        out = capsys.readouterr().out
        assert "utlb_lookup_times" in out

    def test_gemm_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["gemm", "--system", "PCIe-999GB"])

    def test_gemm_packet_size(self, capsys):
        assert main(["gemm", "--size", "32", "--packet-size", "512"]) == 0

    def test_vit_runs(self, capsys):
        assert main(
            ["vit", "--model", "base", "--dim-scale", "0.0625",
             "--system", "PCIe-8GB"]
        ) == 0
        out = capsys.readouterr().out
        assert "non-GEMM" in out

    def test_sweep_packet(self, capsys, tmp_path):
        assert main(
            ["sweep", "--kind", "packet", "--size", "32",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "4096" in out
        assert "0 cached / 7 simulated" in out

    def test_sweep_second_run_served_from_cache(self, capsys, tmp_path):
        argv = ["sweep", "--kind", "packet", "--size", "32",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "7 cached / 0 simulated" in second
        # The replayed table is byte-identical to the simulated one.
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_sweep_no_cache(self, capsys, tmp_path):
        argv = ["sweep", "--kind", "packet", "--size", "32",
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cached / 7 simulated" in out

    def test_sweep_list_shows_all_experiments(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "pcie-bandwidth", "packet-size", "fig5-memory",
            "fig6a-mem-bandwidth", "fig6b-mem-latency", "fig7-transformer",
            "fig8-gemm-split", "fig9-tradeoff", "tab4-translation",
            "ablation-dataflow", "ablation-smmu", "access-modes",
            "ext-cxl-gemm", "ext-cxl-vit",
            "topo-endpoint-scaling", "topo-contention", "topo-p2p",
            "topo-switch-depth",
        ):
            assert name in out, f"{name} missing from sweep --list"

    def test_sweep_list_json(self, capsys):
        import json

        assert main(["sweep", "--list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["topo-p2p"]["runner"] == "peer"
        assert by_name["topo-endpoint-scaling"]["runner"] == "multigemm"
        assert by_name["pcie-bandwidth"]["runner"] == "gemm"
        for entry in entries:
            assert set(entry) == {"name", "runner", "points", "description"}
            assert entry["points"] > 0

    def test_sweep_json_without_list_warns(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "access-modes", "--size", "16", "--json",
             "--cache-dir", str(tmp_path)]
        ) == 0
        assert "--json applies to --list" in capsys.readouterr().err

    def test_sweep_multigemm_runner_table(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "topo-endpoint-scaling", "--size", "48",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "uplink util" in out
        assert "topo-endpoint-scaling" in out

    def test_sweep_peer_runner_table(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "topo-p2p", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bounce" in out
        assert "RC bytes" in out

    def test_sweep_by_name(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "access-modes", "--size", "16",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "access-modes" in out
        assert "DevMem" in out
        assert "0 cached / 3 simulated" in out

    def test_sweep_by_name_vit_runner(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "ext-cxl-vit", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "non-GEMM" in out
        assert "vit_devmem_cxl" in out

    def test_sweep_unknown_name(self):
        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["sweep", "--name", "no-such-figure"])

    def test_sweep_name_honors_system_base(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "packet-size", "--system", "DevMem",
             "--size", "16", "--cache-dir", str(tmp_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "ignores" not in captured.err

    def test_sweep_name_warns_on_unsupported_system(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "access-modes", "--system", "DevMem",
             "--size", "16", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "ignores --system" in capsys.readouterr().err

    def test_sweep_shard_flag(self, capsys, tmp_path):
        argv = ["sweep", "--name", "access-modes", "--size", "16",
                "--cache-dir", str(tmp_path)]
        assert main(argv + ["--shard", "1/3"]) == 0
        assert "shard 1/3" in capsys.readouterr().out
        assert main(argv + ["--shard", "2/3"]) == 0
        assert main(argv + ["--shard", "3/3"]) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "3 cached / 0 simulated" in capsys.readouterr().out

    def test_sweep_bad_shard_exits_cleanly(self, tmp_path):
        # A malformed --shard must be a clean CLI error, not a traceback.
        with pytest.raises(SystemExit, match="I/N"):
            main(["sweep", "--name", "access-modes", "--shard", "bogus",
                  "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="shard"):
            main(["sweep", "--name", "access-modes", "--shard", "0/4",
                  "--cache-dir", str(tmp_path)])

    def test_cache_stats_clear_prune(self, capsys, tmp_path):
        assert main(
            ["sweep", "--name", "access-modes", "--size", "16",
             "--cache-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:    3" in out
        assert "access-modes" in out
        assert main(["cache", "prune", "--sweep", "access-modes",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 0 entries" in capsys.readouterr().out

    def test_cache_prune_requires_sweep(self, tmp_path):
        with pytest.raises(SystemExit, match="--sweep"):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])

    def test_systems_lists_cxl_presets(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "CXL-host" in out
        assert "DevMem-CXL" in out

    def test_gemm_on_cxl_host(self, capsys):
        assert main(["gemm", "--system", "cxl-host", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "CXL-host" in out

    def test_gemm_on_devmem_cxl(self, capsys):
        assert main(["gemm", "--system", "DevMem-CXL", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "DevMem-CXL" in out
